"""Tests for serializable multi-invocation transactions (§3.1 future work)."""

import random

import pytest

from repro.apps.bank import account_type
from repro.core import LocalRuntime
from repro.core.transactions import TransactionAborted, TransactionManager
from repro.errors import InvocationError, PrivateMethodError


@pytest.fixture()
def setup():
    runtime = LocalRuntime(seed=2)
    runtime.register_type(account_type())
    manager = TransactionManager(runtime)
    a = runtime.create_object("Account", initial={"balance": 100})
    b = runtime.create_object("Account", initial={"balance": 50})
    return runtime, manager, a, b


def test_commit_publishes_all_writes(setup):
    runtime, manager, a, b = setup
    with manager.transaction() as txn:
        txn.invoke(a, "withdraw", 30)
        txn.invoke(b, "deposit", 30)
    assert runtime.invoke(a, "get_balance") == 70
    assert runtime.invoke(b, "get_balance") == 80


def test_uncommitted_writes_invisible(setup):
    runtime, manager, a, b = setup
    txn = manager.begin()
    txn.invoke(a, "withdraw", 30)
    # A plain invocation between transactional calls sees committed state.
    assert runtime.invoke(a, "get_balance") == 100
    txn.invoke(b, "deposit", 30)
    assert runtime.invoke(b, "get_balance") == 50
    txn.commit()
    assert runtime.invoke(a, "get_balance") == 70
    assert runtime.invoke(b, "get_balance") == 80


def test_abort_discards_everything(setup):
    runtime, manager, a, b = setup
    txn = manager.begin()
    txn.invoke(a, "withdraw", 30)
    txn.invoke(b, "deposit", 30)
    txn.abort()
    assert runtime.invoke(a, "get_balance") == 100
    assert runtime.invoke(b, "get_balance") == 50


def test_exception_in_with_block_rolls_back(setup):
    runtime, manager, a, _b = setup
    with pytest.raises(RuntimeError):
        with manager.transaction() as txn:
            txn.invoke(a, "withdraw", 30)
            raise RuntimeError("application bug")
    assert runtime.invoke(a, "get_balance") == 100


def test_guest_trap_poisons_transaction(setup):
    runtime, manager, a, _b = setup
    txn = manager.begin()
    txn.invoke(a, "withdraw", 30)
    with pytest.raises(InvocationError):
        txn.invoke(a, "withdraw", 500)  # insufficient funds traps
    assert not txn.is_active
    assert runtime.invoke(a, "get_balance") == 100  # nothing committed


def test_reads_inside_txn_see_own_writes(setup):
    runtime, manager, a, _b = setup
    with manager.transaction() as txn:
        txn.invoke(a, "withdraw", 30)
        assert txn.invoke(a, "get_balance") == 70
    assert runtime.invoke(a, "get_balance") == 70


def test_operations_after_commit_rejected(setup):
    _runtime, manager, a, _b = setup
    txn = manager.begin()
    txn.commit()
    with pytest.raises(TransactionAborted):
        txn.invoke(a, "get_balance")
    with pytest.raises(TransactionAborted):
        txn.commit()


def test_private_methods_blocked(setup):
    runtime, manager, a, _b = setup
    from repro.core import ObjectType, ValueField, method

    def hidden(self):
        pass

    secret = ObjectType("Secret", fields=[ValueField("v")], methods=[method(hidden, public=False)])
    runtime.register_type(secret)
    oid = runtime.create_object("Secret")
    txn = manager.begin()
    with pytest.raises(PrivateMethodError):
        txn.invoke(oid, "hidden")


def test_wound_wait_older_wins(setup):
    runtime, manager, a, _b = setup
    older = manager.begin()
    younger = manager.begin()
    younger.invoke(a, "withdraw", 10)  # younger holds the lock on a
    older.invoke(a, "withdraw", 10)  # older wounds younger
    assert not younger.is_active
    with pytest.raises(TransactionAborted):
        younger.invoke(a, "get_balance")
    older.commit()
    assert runtime.invoke(a, "get_balance") == 90  # only older's debit


def test_wound_wait_younger_aborts_itself(setup):
    runtime, manager, a, _b = setup
    older = manager.begin()
    younger = manager.begin()
    older.invoke(a, "withdraw", 10)
    with pytest.raises(TransactionAborted):
        younger.invoke(a, "withdraw", 10)
    assert older.is_active
    older.commit()
    assert runtime.invoke(a, "get_balance") == 90


def test_run_retries_on_conflict(setup):
    runtime, manager, a, b = setup
    blocker = manager.begin()
    blocker.invoke(a, "withdraw", 1)

    calls = []

    def body(txn):
        calls.append(1)
        if len(calls) == 1:
            # First attempt collides with the (older) blocker and aborts.
            txn.invoke(a, "withdraw", 10)
        else:
            txn.invoke(b, "deposit", 5)
        return "done"

    assert manager.run(body) == "done"
    assert len(calls) == 2
    blocker.commit()


def test_nested_calls_join_transaction(setup):
    runtime, manager, a, b = setup
    # transfer() internally nested-invokes withdraw + the payee's deposit;
    # inside a transaction those all share one commit.
    txn = manager.begin()
    txn.invoke(a, "transfer", b, 25)
    assert runtime.invoke(b, "get_balance") == 50  # not yet visible
    txn.commit()
    assert runtime.invoke(a, "get_balance") == 75
    assert runtime.invoke(b, "get_balance") == 75


def test_money_conserved_under_interleaved_transfers(setup):
    runtime, manager, a, b = setup
    rng = random.Random(0)
    total_before = 150

    for _ in range(40):
        source, sink = (a, b) if rng.random() < 0.5 else (b, a)
        amount = rng.randint(1, 20)

        def body(txn, source=source, sink=sink, amount=amount):
            balance = txn.invoke(source, "get_balance")
            if balance >= amount:
                txn.invoke(source, "withdraw", amount)
                txn.invoke(sink, "deposit", amount)

        try:
            manager.run(body)
        except InvocationError:
            pass
    total_after = runtime.invoke(a, "get_balance") + runtime.invoke(b, "get_balance")
    assert total_after == total_before
    assert runtime.invoke(a, "get_balance") >= 0
    assert runtime.invoke(b, "get_balance") >= 0


def test_serializability_equivalent_to_serial_order(setup):
    """Interleaved committed transactions must equal replaying them in
    commit order on a fresh runtime (conflict-serializability witness)."""
    runtime, manager, a, b = setup
    log = []

    t1 = manager.begin()
    t2 = manager.begin()
    # t2 touches only b; t1 touches only a -> they interleave freely.
    t1.invoke(a, "withdraw", 10)
    t2.invoke(b, "deposit", 7)
    t1.invoke(a, "deposit", 3)
    t2.invoke(b, "withdraw", 2)
    t2.commit()
    log.append([(b, "deposit", 7), (b, "withdraw", 2)])
    t1.commit()
    log.append([(a, "withdraw", 10), (a, "deposit", 3)])

    replay_runtime = LocalRuntime(seed=2)
    replay_runtime.register_type(account_type())
    ra = replay_runtime.create_object("Account", initial={"balance": 100})
    rb = replay_runtime.create_object("Account", initial={"balance": 50})
    remap = {a: ra, b: rb}
    for txn_ops in log:
        for oid, method_name, amount in txn_ops:
            replay_runtime.invoke(remap[oid], method_name, amount)

    assert runtime.invoke(a, "get_balance") == replay_runtime.invoke(ra, "get_balance")
    assert runtime.invoke(b, "get_balance") == replay_runtime.invoke(rb, "get_balance")


def test_stats_track_outcomes(setup):
    _runtime, manager, a, _b = setup
    txn = manager.begin()
    txn.invoke(a, "withdraw", 1)
    txn.commit()
    doomed = manager.begin()
    doomed.abort()
    assert manager.stats["begun"] == 2
    assert manager.stats["committed"] == 1
    assert manager.stats["aborted"] == 1
