"""End-to-end tests for LocalRuntime: lifecycle, invocation semantics,
the §3.1 consistency model, and error paths."""

import pytest

from repro.core import (
    LocalRuntime,
    ObjectId,
    ObjectType,
    ValueField,
    method,
    readonly_method,
)
from repro.core.storage import KVBackend
from repro.errors import (
    InvocationError,
    ModelError,
    ObjectExistsError,
    PrivateMethodError,
    ReadOnlyViolation,
    UnknownObjectError,
    UnknownTypeError,
)
from repro.kvstore import DB


# -- object lifecycle --------------------------------------------------------


def test_create_and_invoke(runtime):
    oid = runtime.create_object("Counter")
    assert runtime.invoke(oid, "increment", 5) == 5
    assert runtime.invoke(oid, "read") == 5


def test_create_with_initial_values(runtime):
    oid = runtime.create_object("Counter", initial={"count": 10})
    assert runtime.invoke(oid, "read") == 10


def test_create_with_initial_collection_list(runtime):
    oid = runtime.create_object("Notebook", initial={"notes": ["a", "b"]})
    notes = runtime.invoke(oid, "list_notes")
    assert [value for _key, value in notes] == ["a", "b"]
    # Appends continue after the seeded entries.
    runtime.invoke(oid, "add_note", "c")
    notes = runtime.invoke(oid, "list_notes")
    assert [value for _key, value in notes] == ["a", "b", "c"]


def test_create_with_initial_collection_dict(runtime):
    oid = runtime.create_object("Notebook", initial={"notes": {"k1": "x"}})
    assert runtime.invoke(oid, "list_notes") == [("k1", "x")]


def test_create_with_unknown_field_rejected(runtime):
    with pytest.raises(ModelError):
        runtime.create_object("Counter", initial={"nope": 1})


def test_create_with_explicit_id(runtime):
    oid = ObjectId.from_name("my-counter")
    assert runtime.create_object("Counter", object_id=oid) == oid


def test_duplicate_id_rejected(runtime):
    oid = ObjectId.from_name("dup")
    runtime.create_object("Counter", object_id=oid)
    with pytest.raises(ObjectExistsError):
        runtime.create_object("Counter", object_id=oid)


def test_unknown_type_rejected(runtime):
    with pytest.raises(UnknownTypeError):
        runtime.create_object("Nope")


def test_delete_object(runtime):
    oid = runtime.create_object("Counter")
    runtime.delete_object(oid)
    assert not runtime.object_exists(oid)
    with pytest.raises(UnknownObjectError):
        runtime.invoke(oid, "read")


def test_delete_missing_object_raises(runtime):
    with pytest.raises(UnknownObjectError):
        runtime.delete_object(ObjectId.from_name("ghost"))


# -- invocation semantics ----------------------------------------------------


def test_invoke_unknown_object(runtime):
    with pytest.raises(UnknownObjectError):
        runtime.invoke(ObjectId.from_name("ghost"), "read")


def test_private_method_blocked_from_clients(runtime):
    oid = runtime.create_object("Notebook")
    with pytest.raises(PrivateMethodError):
        runtime.invoke(oid, "secret_touch")


def test_private_method_callable_from_invocations(runtime):
    oid = runtime.create_object("Notebook")
    assert runtime.invoke(oid, "touch_via_self_call") is True


def test_readonly_method_cannot_write(runtime):
    def sneaky(self):
        self.set("count", 1)

    bad_type = ObjectType(
        "Bad",
        fields=[ValueField("count")],
        methods=[method(sneaky, name="mutate"), readonly_method(sneaky, name="sneaky")],
    )
    runtime.register_type(bad_type)
    oid = runtime.create_object("Bad")
    with pytest.raises(InvocationError) as excinfo:
        runtime.invoke(oid, "sneaky")
    assert isinstance(excinfo.value.__cause__.__cause__, ReadOnlyViolation)


def test_guest_failure_aborts_without_committing(runtime):
    oid = runtime.create_object("Counter", initial={"count": 1})
    with pytest.raises(InvocationError):
        runtime.invoke(oid, "fail_after_write")
    assert runtime.invoke(oid, "read") == 1
    assert runtime.stats.aborts == 1


def test_invocation_is_atomic(runtime):
    oid = runtime.create_object("Notebook")
    runtime.invoke(oid, "add_note", "n1")
    # The note and the collection counter commit together; both visible.
    assert runtime.invoke(oid, "note_count") == 1


# -- §3.1: nested calls are commit points --------------------------------------


def test_nested_call_commits_caller_writes_first(runtime):
    a = runtime.create_object("Counter")
    b = runtime.create_object("Counter")
    runtime.invoke(a, "increment_other", b, 7)
    assert runtime.invoke(a, "read") == 7
    assert runtime.invoke(b, "read") == 7


def test_failure_after_nested_call_keeps_earlier_segments(runtime):
    a = runtime.create_object("Counter")
    b = runtime.create_object("Counter")
    with pytest.raises(InvocationError):
        runtime.invoke(a, "write_then_call_then_fail", b)
    # Segment 1 (a.count=123) and the nested call (b += 1) committed before
    # the failure; only the final (empty) segment was discarded.
    assert runtime.invoke(a, "read") == 123
    assert runtime.invoke(b, "read") == 1


def test_parts_counted_per_commit_segment(runtime):
    a = runtime.create_object("Counter")
    b = runtime.create_object("Counter")
    result = runtime.invoke_detailed(a, "increment_other", b, 1)
    # Two segments: before the nested call and after it... the second
    # segment has no writes, so one commit happened for a plus the nested
    # result for b.
    assert result.parts >= 1
    assert len(result.sub_results) == 1
    assert result.sub_results[0].object_id == b


def test_call_depth_limit(runtime):
    def recurse(self):
        self.get_object(self.self_id()).recurse_forever()

    looping = ObjectType(
        "Loop", fields=[], methods=[method(recurse, name="recurse_forever")]
    )
    runtime.register_type(looping)
    oid = runtime.create_object("Loop")
    with pytest.raises(InvocationError):
        runtime.invoke(oid, "recurse_forever")


# -- real-time visibility ----------------------------------------------------


def test_committed_writes_visible_to_following_invocations(runtime):
    oid = runtime.create_object("Counter")
    for expected in range(1, 20):
        assert runtime.invoke(oid, "increment") == expected
        assert runtime.invoke(oid, "read") == expected


# -- stats / hooks ---------------------------------------------------------


def test_stats_track_invocations(runtime):
    oid = runtime.create_object("Counter")
    runtime.invoke(oid, "increment")
    runtime.invoke(oid, "read")
    assert runtime.stats.invocations >= 2
    assert runtime.stats.commits >= 1
    assert runtime.stats.fuel_used > 0


def test_on_invocation_hook_fires_for_top_level_only(runtime):
    seen = []
    runtime.on_invocation = lambda result: seen.append(result.method)
    a = runtime.create_object("Counter")
    b = runtime.create_object("Counter")
    runtime.invoke(a, "increment_other", b, 1)
    assert seen == ["increment_other"]


# -- persistence through the real kvstore --------------------------------------


def test_runtime_over_kvbackend_survives_reopen(tmp_path):
    from tests.core.conftest import make_counter_type

    path = str(tmp_path / "db")
    with DB.open(path) as db:
        rt = LocalRuntime(storage=KVBackend(db), enable_cache=False)
        rt.register_type(make_counter_type())
        oid = rt.create_object("Counter", object_id=ObjectId.from_name("persisted"))
        rt.invoke(oid, "increment", 41)
        rt.invoke(oid, "increment", 1)
    with DB.open(path) as db:
        rt = LocalRuntime(storage=KVBackend(db), enable_cache=False)
        rt.register_type(make_counter_type())
        assert rt.invoke(ObjectId.from_name("persisted"), "read") == 42
