"""Tests for the invocation context: fields, collections, sugar, metering."""

import pytest

from repro.core import LocalRuntime, ObjectType, ValueField, method, readonly_method
from repro.errors import InvocationError, UnknownFieldError
from repro.wasm.host_api import OpCosts


# -- value fields through invocations -----------------------------------------


def test_value_default_returned_when_unset(runtime):
    oid = runtime.create_object("Counter")
    assert runtime.invoke(oid, "read") == 0


def test_unknown_field_access_traps(runtime):
    def touch_bad_field(self):
        return self.get("nonexistent")

    bad = ObjectType("FieldBad", fields=[], methods=[method(touch_bad_field)])
    runtime.register_type(bad)
    oid = runtime.create_object("FieldBad")
    with pytest.raises(InvocationError) as excinfo:
        runtime.invoke(oid, "touch_bad_field")
    assert isinstance(excinfo.value.__cause__.__cause__, UnknownFieldError)


# -- collections ------------------------------------------------------------


def test_push_returns_increasing_keys(runtime):
    oid = runtime.create_object("Notebook")
    k1 = runtime.invoke(oid, "add_note", "first")
    k2 = runtime.invoke(oid, "add_note", "second")
    assert k1 < k2


def test_items_in_key_order_and_reverse(runtime):
    oid = runtime.create_object("Notebook")
    for text in ["a", "b", "c"]:
        runtime.invoke(oid, "add_note", text)
    forward = [value for _k, value in runtime.invoke(oid, "list_notes")]
    backward = [value for _k, value in runtime.invoke(oid, "list_notes", None, True)]
    assert forward == ["a", "b", "c"]
    assert backward == ["c", "b", "a"]


def test_items_limit(runtime):
    oid = runtime.create_object("Notebook")
    for text in ["a", "b", "c", "d"]:
        runtime.invoke(oid, "add_note", text)
    limited = runtime.invoke(oid, "list_notes", 2)
    assert [value for _k, value in limited] == ["a", "b"]


def test_put_get_delete_by_key(runtime):
    oid = runtime.create_object("Notebook")
    runtime.invoke(oid, "set_note", "k", "hello")
    assert ("k", "hello") in runtime.invoke(oid, "list_notes")
    runtime.invoke(oid, "remove_note", "k")
    assert runtime.invoke(oid, "list_notes") == []


def test_scan_sees_own_buffered_writes():
    rt = LocalRuntime()

    def add_two_then_count(self):
        self.collection("notes").push("x")
        self.collection("notes").push("y")
        return len(self.collection("notes"))

    notebook = ObjectType(
        "N",
        fields=[__import__("repro.core", fromlist=["CollectionField"]).CollectionField("notes")],
        methods=[method(add_two_then_count)],
    )
    rt.register_type(notebook)
    oid = rt.create_object("N")
    assert rt.invoke(oid, "add_two_then_count") == 2


def test_scan_hides_own_buffered_deletes(runtime):
    def delete_then_count(self, key):
        self.collection("notes").delete(key)
        return len(self.collection("notes"))

    from repro.core import CollectionField

    notebook = ObjectType(
        "N2", fields=[CollectionField("notes")], methods=[method(delete_then_count)]
    )
    runtime.register_type(notebook)
    oid = runtime.create_object("N2", initial={"notes": {"k": "v", "other": "w"}})
    assert runtime.invoke(oid, "delete_then_count", "k") == 1


# -- utilities & determinism tracking -----------------------------------------


def test_now_marks_nondeterministic(runtime):
    oid = runtime.create_object("Counter")
    result = runtime.invoke_detailed(oid, "read_with_time")
    assert result.cache_hit is False
    # Invoking again re-executes: never cached.
    again = runtime.invoke_detailed(oid, "read_with_time")
    assert again.cache_hit is False


def test_clock_is_monotonic(runtime):
    def stamp(self):
        return self.now()

    from repro.core import ValueField as VF

    t = ObjectType("Clocked", fields=[], methods=[method(stamp)])
    runtime.register_type(t)
    oid = runtime.create_object("Clocked")
    times = [runtime.invoke(oid, "stamp") for _ in range(5)]
    assert times == sorted(times)
    assert len(set(times)) == 5


def test_guest_random_is_seeded():
    def draw(self):
        return self.random()

    t = ObjectType("Rand", fields=[], methods=[method(draw)])
    rt1 = LocalRuntime(seed=5)
    rt2 = LocalRuntime(seed=5)
    for rt in (rt1, rt2):
        rt.register_type(t)
    o1 = rt1.create_object("Rand")
    o2 = rt2.create_object("Rand")
    assert rt1.invoke(o1, "draw") == rt2.invoke(o2, "draw")


def test_guest_logs_captured(runtime):
    def chatty(self):
        self.log("hello")
        self.log("world")

    t = ObjectType("Chatty", fields=[], methods=[method(chatty)])
    runtime.register_type(t)
    oid = runtime.create_object("Chatty")
    result = runtime.invoke_detailed(oid, "chatty")
    assert result.logs == ["hello", "world"]


def test_self_id_matches(runtime):
    def who(self):
        return self.self_id()

    t = ObjectType("Who", fields=[], methods=[readonly_method(who)])
    runtime.register_type(t)
    oid = runtime.create_object("Who")
    assert runtime.invoke(oid, "who") == oid


# -- metering -----------------------------------------------------------


def test_fuel_grows_with_work(runtime):
    oid = runtime.create_object("Notebook")
    small = runtime.invoke_detailed(oid, "add_note", "x").fuel_used
    oid2 = runtime.create_object("Notebook")
    for i in range(20):
        runtime.invoke(oid2, "add_note", f"note-{i}")
    big = runtime.invoke_detailed(oid2, "list_notes").fuel_used
    assert big > small


def test_fuel_budget_aborts_runaway():
    rt = LocalRuntime(fuel_budget=200.0, enable_cache=False)

    def busy(self):
        for i in range(1000):
            self.set("v", i)

    t = ObjectType("Busy", fields=[ValueField("v")], methods=[method(busy)])
    rt.register_type(t)
    oid = rt.create_object("Busy")
    with pytest.raises(InvocationError, match="fuel"):
        rt.invoke(oid, "busy")


def test_costs_configurable():
    cheap = LocalRuntime(costs=OpCosts(kv_get=1.0, call_base=1.0), enable_cache=False)
    costly = LocalRuntime(costs=OpCosts(kv_get=500.0, call_base=1.0), enable_cache=False)

    def peek(self):
        return self.get("v")

    t = ObjectType("Peek", fields=[ValueField("v", default=1)], methods=[readonly_method(peek)])
    for rt in (cheap, costly):
        rt.register_type(t)
    cheap_fuel = cheap.invoke_detailed(cheap.create_object("Peek"), "peek").fuel_used
    costly_fuel = costly.invoke_detailed(costly.create_object("Peek"), "peek").fuel_used
    assert costly_fuel > cheap_fuel


# -- proxies ------------------------------------------------------------


def test_object_proxy_private_attribute_raises(runtime):
    def poke(self, other):
        proxy = self.get_object(other)
        return getattr(proxy, "_hidden", "no-access")

    t = ObjectType("Poker", fields=[], methods=[method(poke)])
    runtime.register_type(t)
    a = runtime.create_object("Poker")
    b = runtime.create_object("Counter")
    assert runtime.invoke(a, "poke", b) == "no-access"
