"""Additional core-model edge cases: memory limits, cache oddities,
write-set visibility across nested calls, and invocation metadata."""

import pytest

from repro.core import (
    CollectionField,
    LocalRuntime,
    ObjectType,
    ValueField,
    method,
    readonly_method,
)
from repro.errors import InvocationError, MemoryLimitExceeded


def test_memory_limit_trap_aborts_cleanly():
    runtime = LocalRuntime(memory_limit_bytes=256, enable_cache=False)

    def hoard(self):
        self.set("blob", "x" * 10_000)
        return self.get("blob")  # reading the big value charges guest memory

    t = ObjectType("Hoarder", fields=[ValueField("blob")], methods=[method(hoard)])
    runtime.register_type(t)
    oid = runtime.create_object("Hoarder")
    with pytest.raises(InvocationError) as excinfo:
        runtime.invoke(oid, "hoard")
    # MemoryLimitExceeded is itself a Trap, so it chains directly.
    assert isinstance(excinfo.value.__cause__, MemoryLimitExceeded)
    # The failed invocation committed nothing.
    from repro.core import keyspace

    assert runtime.storage.get(keyspace.value_key(oid, "blob")) is None


def test_unserialisable_args_skip_cache_but_execute():
    runtime = LocalRuntime()

    def echo(self, value):
        return str(type(value).__name__)

    t = ObjectType("Echo", fields=[], methods=[readonly_method(echo)])
    runtime.register_type(t)
    oid = runtime.create_object("Echo")
    result = runtime.invoke_detailed(oid, "echo", object())
    assert result.value == "object"
    assert not result.cache_hit
    # And again: still executes (never cached).
    assert not runtime.invoke_detailed(oid, "echo", object()).cache_hit


def test_nested_call_sees_callers_committed_writes():
    runtime = LocalRuntime()

    def outer(self, other):
        self.set("v", "written-by-outer")
        # The nested call commits our write first (§3.1), so the callee
        # observes it through the committed state.
        return self.get_object(other).peek_at(self.self_id())

    def peek_at(self, target):
        return self.get_object(target).read_v()

    def read_v(self):
        return self.get("v")

    t = ObjectType(
        "Chain",
        fields=[ValueField("v")],
        methods=[method(outer), method(peek_at, public=False), readonly_method(read_v, public=False)],
    )
    runtime.register_type(t)
    a = runtime.create_object("Chain")
    b = runtime.create_object("Chain")
    assert runtime.invoke(a, "outer", b) == "written-by-outer"


def test_invocation_result_metadata():
    runtime = LocalRuntime()

    def touch(self):
        self.set("v", 1)
        self.log("did it")
        return "ok"

    t = ObjectType("Meta", fields=[ValueField("v")], methods=[method(touch)])
    runtime.register_type(t)
    oid = runtime.create_object("Meta")
    result = runtime.invoke_detailed(oid, "touch")
    assert result.value == "ok"
    assert result.logs == ["did it"]
    assert result.parts == 1
    assert result.fuel_used > 0
    assert len(result.written_keys) == 1
    assert result.total_invocations() == 1
    assert result.commit_sequence > 0


def test_written_keys_span_all_segments():
    runtime = LocalRuntime()

    def two_phase(self, other):
        self.set("v", "before")
        self.get_object(other).noop()
        self.set("w", "after")

    def noop(self):
        return None

    t = ObjectType(
        "TwoPhase",
        fields=[ValueField("v"), ValueField("w")],
        methods=[method(two_phase), method(noop, public=False)],
    )
    runtime.register_type(t)
    a = runtime.create_object("TwoPhase")
    b = runtime.create_object("TwoPhase")
    result = runtime.invoke_detailed(a, "two_phase", b)
    assert len(result.written_keys) == 2
    assert result.parts == 2


def test_collection_len_and_contains_through_invocation():
    runtime = LocalRuntime()

    def fill(self):
        view = self.collection("c")
        view.put("present", 1)
        return ("present" in view, "absent" in view, len(view))

    t = ObjectType("Coll", fields=[CollectionField("c")], methods=[method(fill)])
    runtime.register_type(t)
    oid = runtime.create_object("Coll")
    assert runtime.invoke(oid, "fill") == (True, False, 1)


def test_collection_values_iterator():
    runtime = LocalRuntime()

    def fill_and_list(self):
        self.collection("c").push("a")
        self.collection("c").push("b")
        return list(self.collection("c").values(reverse=True))

    t = ObjectType("Vals", fields=[CollectionField("c")], methods=[method(fill_and_list)])
    runtime.register_type(t)
    oid = runtime.create_object("Vals")
    assert runtime.invoke(oid, "fill_and_list") == ["b", "a"]
