"""Shared object types for core tests."""

import pytest

from repro.core import (
    CollectionField,
    LocalRuntime,
    ObjectType,
    ValueField,
    method,
    readonly_method,
)


def make_counter_type():
    def increment(self, by=1):
        self.set("count", (self.get("count") or 0) + by)
        return self.get("count")

    def read(self):
        return self.get("count") or 0

    def read_with_time(self):
        _ = self.now()
        return self.get("count") or 0

    def increment_other(self, other_oid, by):
        # Writes locally, then nested-invokes another object (§3.1 split).
        self.set("count", (self.get("count") or 0) + by)
        return self.get_object(other_oid).increment(by)

    def fail_after_write(self):
        self.set("count", 999_999)
        raise RuntimeError("deliberate guest failure")

    def write_then_call_then_fail(self, other_oid):
        self.set("count", 123)
        self.get_object(other_oid).increment(1)
        raise RuntimeError("fails after the nested call")

    return ObjectType(
        "Counter",
        fields=[ValueField("count", default=0)],
        methods=[
            method(increment),
            readonly_method(read),
            readonly_method(read_with_time),
            method(increment_other),
            method(fail_after_write),
            method(write_then_call_then_fail),
        ],
    )


def make_notebook_type():
    def add_note(self, text):
        return self.collection("notes").push(text)

    def set_note(self, key, text):
        self.collection("notes").put(key, text)

    def remove_note(self, key):
        self.collection("notes").delete(key)

    def list_notes(self, limit=None, reverse=False):
        return list(self.collection("notes").items(limit=limit, reverse=reverse))

    def note_count(self):
        return len(self.collection("notes"))

    def secret_touch(self):
        self.set("touched", True)

    def touch_via_self_call(self):
        # Calls a non-public method of the same object through the
        # invocation machinery (allowed: caller is an invocation).
        self.secret_touch()
        return self.get("touched")

    return ObjectType(
        "Notebook",
        fields=[ValueField("touched"), CollectionField("notes")],
        methods=[
            method(add_note),
            method(set_note),
            method(remove_note),
            readonly_method(list_notes),
            readonly_method(note_count),
            method(secret_touch, public=False),
            method(touch_via_self_call),
        ],
    )


@pytest.fixture()
def runtime():
    rt = LocalRuntime(seed=7)
    rt.register_type(make_counter_type())
    rt.register_type(make_notebook_type())
    return rt
