"""Unit and property tests for storage backends.

The key property: MemoryBackend and KVBackend must be observationally
identical under any operation sequence.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.storage import KVBackend, MemoryBackend
from repro.kvstore import DB, WriteBatch


def batch_of(*ops):
    batch = WriteBatch()
    for op in ops:
        if len(op) == 2:
            batch.put(*op)
        else:
            batch.delete(op[0])
    return batch


def test_memory_get_put():
    backend = MemoryBackend()
    backend.apply(batch_of((b"k", b"v")))
    assert backend.get(b"k") == b"v"
    assert backend.get(b"missing") is None


def test_memory_delete():
    backend = MemoryBackend()
    backend.apply(batch_of((b"k", b"v")))
    backend.apply(batch_of((b"k",)))
    assert backend.get(b"k") is None
    assert len(backend) == 0


def test_memory_iterate_sorted_with_bounds():
    backend = MemoryBackend()
    backend.apply(batch_of((b"c", b"3"), (b"a", b"1"), (b"b", b"2"), (b"d", b"4")))
    assert [k for k, _ in backend.iterate(b"b", b"d")] == [b"b", b"c"]
    assert [k for k, _ in backend.iterate(b"", None)] == [b"a", b"b", b"c", b"d"]


def test_memory_sequence_increases_per_op():
    backend = MemoryBackend()
    s1 = backend.apply(batch_of((b"a", b"1")))
    s2 = backend.apply(batch_of((b"b", b"2"), (b"c", b"3")))
    assert s2 > s1
    assert backend.last_sequence == s2


def test_memory_size_bytes():
    backend = MemoryBackend()
    backend.apply(batch_of((b"key", b"value")))
    assert backend.size_bytes() == len(b"key") + len(b"value")


def test_kv_backend_delegates(tmp_path):
    with DB.open(str(tmp_path / "db")) as db:
        backend = KVBackend(db)
        backend.apply(batch_of((b"k", b"v")))
        assert backend.get(b"k") == b"v"
        assert [k for k, _ in backend.iterate(b"", None)] == [b"k"]
        assert backend.last_sequence >= 1


_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.binary(min_size=1, max_size=5), st.binary(max_size=10)),
        st.tuples(st.just("del"), st.binary(min_size=1, max_size=5), st.just(b"")),
    ),
    max_size=40,
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(_ops)
def test_backends_observationally_equal(tmp_path_factory, ops):
    directory = str(tmp_path_factory.mktemp("kv"))
    memory = MemoryBackend()
    with DB.open(directory) as db:
        kv = KVBackend(db)
        for op, key, value in ops:
            batch = WriteBatch()
            if op == "put":
                batch.put(key, value)
            else:
                batch.delete(key)
            memory.apply(batch)
            second = WriteBatch()
            if op == "put":
                second.put(key, value)
            else:
                second.delete(key)
            kv.apply(second)
        assert list(memory.iterate(b"", None)) == list(kv.iterate(b"", None))
        for _, key, _ in ops:
            assert memory.get(key) == kv.get(key)
