"""Property tests pinning the codec fast paths to the legacy encoder.

``encode_value``/``decode_value`` carry tag-dispatched fast paths (plain
strings, ints, literals) that must stay byte-identical to the historical
``json.dumps(sort_keys=True, separators=(",", ":"))`` — the consistent
cache compares digests of these bytes across nodes, so any divergence is
a correctness bug, not a formatting one.
"""

from __future__ import annotations

import hashlib
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fields import decode_value, encode_value, value_digest
from repro.kvstore.batch import WriteBatch, decode_shared


def _legacy_encode(value) -> bytes:
    return json.dumps(value, sort_keys=True, separators=(",", ":")).encode()


#: JSON-native values (what guests may store in fields): scalars plus
#: nested lists/objects.  Floats stay finite — NaN/inf are not JSON.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(),
)
_json_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)


@settings(max_examples=300)
@given(_json_values)
def test_encode_matches_legacy_json_dumps(value):
    assert encode_value(value) == _legacy_encode(value)


@settings(max_examples=300)
@given(_json_values)
def test_decode_round_trips(value):
    assert decode_value(encode_value(value)) == value


#: adversarial strings for the plain-string fast path: quotes,
#: backslashes, control characters, DEL, non-ASCII (escaped by the
#: stdlib's ensure_ascii), and the boundary characters of _PLAIN_STR
@settings(max_examples=300)
@given(st.text(alphabet=st.characters(min_codepoint=0, max_codepoint=0x100)))
def test_string_fast_path_matches_legacy(text):
    encoded = encode_value(text)
    assert encoded == _legacy_encode(text)
    assert decode_value(encoded) == text


def test_string_fast_path_boundaries():
    for text in ('"', "\\", "\x7f", "\x1f", " ", "~", "ü", "a\\nb", 'say "hi"'):
        assert encode_value(text) == _legacy_encode(text)
        assert decode_value(encode_value(text)) == text


@settings(max_examples=200)
@given(st.integers())
def test_int_fast_path_matches_legacy(number):
    assert encode_value(number) == _legacy_encode(number)
    assert decode_value(encode_value(number)) == number


@settings(max_examples=200)
@given(st.binary(max_size=64))
def test_digest_memo_matches_direct_hash(data):
    expected = hashlib.blake2b(data, digest_size=8).digest()
    assert value_digest(data) == expected
    assert value_digest(data) == expected  # memo hit returns the same


@settings(max_examples=150)
@given(
    st.lists(
        st.tuples(st.binary(max_size=16), st.binary(max_size=32), st.booleans()),
        max_size=8,
    )
)
def test_write_batch_round_trip_and_shared_decode(ops):
    batch = WriteBatch()
    for key, value, is_delete in ops:
        if is_delete:
            batch.delete(key)
        else:
            batch.put(key, value)
    payload = batch.encode()
    plain = WriteBatch.decode(payload)
    shared = decode_shared(payload)
    assert list(plain.items()) == list(batch.items())
    assert list(shared.items()) == list(batch.items())
    # The memo hands the same object back for identical payload bytes.
    assert decode_shared(payload) is shared
