"""Generative test: the ResultCache inverted index never drifts.

PR 1 fixed a stale-cache bug found by one nemesis reproduction; the bug
class — ``_by_read_key`` disagreeing with ``_entries`` after some
interleaving of store/lookup/invalidate/evict — deserves a generative
test.  A hypothesis state machine drives the cache through random
operation sequences against a tiny capacity (so LRU eviction triggers
constantly) and checks the bidirectional index invariant after every
step:

- every entry's read-set keys index back to it (no missed index adds);
- every indexed cache key exists and really reads that storage key
  (no leaked index entries after drop/evict/invalidate);
- the index holds no empty sets and the cache never exceeds capacity.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.caching import _ABSENT_DIGEST, ResultCache
from repro.core.fields import encode_value, value_digest

MAX_ENTRIES = 4

OBJECTS = st.sampled_from(["obj-a", "obj-b"])
METHODS = st.sampled_from(["m1", "m2"])
DIGESTS = st.sampled_from([b"d1", b"d2", b"d3"])
STORAGE_KEYS = st.sampled_from([b"k1", b"k2", b"k3", b"k4", b"k5"])


class CacheIndexMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.cache = ResultCache(max_entries=MAX_ENTRIES)
        #: committed state the cache validates against
        self.storage: dict[bytes, bytes] = {}

    def _current_get(self, key: bytes):
        return self.storage.get(key)

    def _read_set(self, keys: set[bytes]) -> dict[bytes, bytes]:
        """A read set consistent with current storage (as the runtime records)."""
        return {
            key: value_digest(self.storage[key])
            if key in self.storage
            else _ABSENT_DIGEST
            for key in keys
        }

    @rule(
        object_id=OBJECTS,
        method=METHODS,
        digest=DIGESTS,
        value=st.integers(0, 100),
        keys=st.sets(STORAGE_KEYS, min_size=0, max_size=3),
    )
    def store(self, object_id, method, digest, value, keys):
        self.cache.store(object_id, method, digest, value, self._read_set(keys))

    @rule(object_id=OBJECTS, method=METHODS, digest=DIGESTS)
    def lookup(self, object_id, method, digest):
        self.cache.lookup(object_id, method, digest, self._current_get)

    @rule(key=STORAGE_KEYS, value=st.integers(0, 100))
    def commit_write(self, key, value):
        """A commit: mutate storage, then eagerly invalidate readers."""
        self.storage[key] = encode_value(value)
        self.cache.invalidate_keys([key])

    @rule(key=STORAGE_KEYS)
    def commit_delete(self, key):
        self.storage.pop(key, None)
        self.cache.invalidate_keys([key])

    @rule(key=STORAGE_KEYS, value=st.integers(0, 100))
    def write_without_invalidation(self, key, value):
        """A write the cache is *not* told about: later lookups must catch
        it via read-set validation and drop through that path too."""
        self.storage[key] = encode_value(value)

    @rule(keys=st.sets(STORAGE_KEYS, min_size=0, max_size=5))
    def invalidate_many(self, keys):
        self.cache.invalidate_keys(list(keys))

    @rule()
    def clear(self):
        self.cache.clear()

    @invariant()
    def index_matches_entries_exactly(self):
        cache = self.cache
        assert len(cache._entries) <= MAX_ENTRIES
        # forward: every entry is indexed under each of its read-set keys
        for cache_key, entry in cache._entries.items():
            for storage_key in entry.read_set:
                assert cache_key in cache._by_read_key.get(storage_key, set()), (
                    f"{cache_key} reads {storage_key!r} but is not indexed there"
                )
        # backward: every index entry points at a live entry that reads it
        for storage_key, readers in cache._by_read_key.items():
            assert readers, f"empty index set leaked for {storage_key!r}"
            for cache_key in readers:
                entry = cache._entries.get(cache_key)
                assert entry is not None, (
                    f"index for {storage_key!r} references dropped {cache_key}"
                )
                assert storage_key in entry.read_set


CacheIndexMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestCacheIndex = CacheIndexMachine.TestCase


class ReplicaCacheMachine(RuleBasedStateMachine):
    """Cross-replica cache sharing never goes incoherent.

    Models the lease-read piggyback protocol: the primary's cache fires
    ``on_store`` for every locally-originated entry, which queues the
    entry for shipment to a backup; the backup applies replicated writes
    in order and, before installing a shared entry, re-validates its read
    set against *local* committed state (mirroring the store node's
    install path).  Shipment and write application interleave arbitrarily
    — more adversarially than the real frames, where entries ride with
    the writes — so validate-before-install is load-bearing.  The
    invariant is the chaos checker's: ``stale_entries()`` stays empty on
    BOTH replicas after every step.
    """

    def __init__(self) -> None:
        super().__init__()
        self.primary = ResultCache(max_entries=MAX_ENTRIES)
        self.backup = ResultCache(max_entries=MAX_ENTRIES)
        self.primary_storage: dict[bytes, bytes] = {}
        self.backup_storage: dict[bytes, bytes] = {}
        #: committed writes awaiting backup apply, in commit order
        self.replication_queue: list[tuple[bytes, bytes | None]] = []
        #: fresh primary entries awaiting shipment (on_store piggyback)
        self.share_queue: list[tuple] = []
        self.installed = 0
        self.rejected = 0
        self.primary.on_store = (
            lambda *entry: self.share_queue.append(entry)
        )

    def _get(self, storage: dict[bytes, bytes]):
        return storage.get

    def _read_set(self, keys: set[bytes]) -> dict[bytes, bytes]:
        """A read set consistent with *primary* storage at store time."""
        return {
            key: value_digest(self.primary_storage[key])
            if key in self.primary_storage
            else _ABSENT_DIGEST
            for key in keys
        }

    @rule(
        object_id=OBJECTS,
        method=METHODS,
        digest=DIGESTS,
        value=st.integers(0, 100),
        keys=st.sets(STORAGE_KEYS, min_size=0, max_size=3),
    )
    def primary_store(self, object_id, method, digest, value, keys):
        """A read-only invocation memoised at the primary; the on_store
        hook queues it for the backup."""
        self.primary.store(object_id, method, digest, value, self._read_set(keys))

    @rule(object_id=OBJECTS, method=METHODS, digest=DIGESTS)
    def primary_lookup(self, object_id, method, digest):
        self.primary.lookup(object_id, method, digest, self._get(self.primary_storage))

    @rule(object_id=OBJECTS, method=METHODS, digest=DIGESTS)
    def backup_lookup(self, object_id, method, digest):
        self.backup.lookup(object_id, method, digest, self._get(self.backup_storage))

    @rule(key=STORAGE_KEYS, value=st.integers(0, 100))
    def primary_commit_write(self, key, value):
        """A commit at the primary: local apply + eager invalidation, and
        the write joins the ordered replication stream."""
        encoded = encode_value(value)
        self.primary_storage[key] = encoded
        self.primary.invalidate_keys([key])
        self.replication_queue.append((key, encoded))

    @rule(key=STORAGE_KEYS)
    def primary_commit_delete(self, key):
        self.primary_storage.pop(key, None)
        self.primary.invalidate_keys([key])
        self.replication_queue.append((key, None))

    @rule()
    def backup_apply_write(self):
        """The backup applies the next replicated write and invalidates
        readers — the store node's batch-apply path."""
        if not self.replication_queue:
            return
        key, encoded = self.replication_queue.pop(0)
        if encoded is None:
            self.backup_storage.pop(key, None)
        else:
            self.backup_storage[key] = encoded
        self.backup.invalidate_keys([key])

    @rule()
    def deliver_shared_entry(self):
        """A piggybacked entry arrives: validate the read set against the
        backup's committed state, install only on a full match (the store
        node's ``_install_shared_cache``)."""
        if not self.share_queue:
            return
        object_id, method, digest, value, read_set = self.share_queue.pop(0)
        get = self._get(self.backup_storage)
        for storage_key, expected_digest in read_set.items():
            current = get(storage_key)
            current_digest = (
                value_digest(current) if current is not None else _ABSENT_DIGEST
            )
            if current_digest != expected_digest:
                self.rejected += 1
                return
        self.backup.install(object_id, method, digest, value, read_set)
        self.installed += 1

    @invariant()
    def no_replica_serves_stale_state(self):
        assert self.primary.stale_entries(self._get(self.primary_storage)) == []
        assert self.backup.stale_entries(self._get(self.backup_storage)) == []
        # install() never echoes back to the wire: only the primary's
        # locally-originated stores ever entered the share queue.
        assert self.backup.stats.installs == self.installed
        assert self.backup.stats.stores == 0


ReplicaCacheMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestReplicaCache = ReplicaCacheMachine.TestCase
