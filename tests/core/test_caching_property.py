"""Generative test: the ResultCache inverted index never drifts.

PR 1 fixed a stale-cache bug found by one nemesis reproduction; the bug
class — ``_by_read_key`` disagreeing with ``_entries`` after some
interleaving of store/lookup/invalidate/evict — deserves a generative
test.  A hypothesis state machine drives the cache through random
operation sequences against a tiny capacity (so LRU eviction triggers
constantly) and checks the bidirectional index invariant after every
step:

- every entry's read-set keys index back to it (no missed index adds);
- every indexed cache key exists and really reads that storage key
  (no leaked index entries after drop/evict/invalidate);
- the index holds no empty sets and the cache never exceeds capacity.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.caching import _ABSENT_DIGEST, ResultCache
from repro.core.fields import encode_value, value_digest

MAX_ENTRIES = 4

OBJECTS = st.sampled_from(["obj-a", "obj-b"])
METHODS = st.sampled_from(["m1", "m2"])
DIGESTS = st.sampled_from([b"d1", b"d2", b"d3"])
STORAGE_KEYS = st.sampled_from([b"k1", b"k2", b"k3", b"k4", b"k5"])


class CacheIndexMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.cache = ResultCache(max_entries=MAX_ENTRIES)
        #: committed state the cache validates against
        self.storage: dict[bytes, bytes] = {}

    def _current_get(self, key: bytes):
        return self.storage.get(key)

    def _read_set(self, keys: set[bytes]) -> dict[bytes, bytes]:
        """A read set consistent with current storage (as the runtime records)."""
        return {
            key: value_digest(self.storage[key])
            if key in self.storage
            else _ABSENT_DIGEST
            for key in keys
        }

    @rule(
        object_id=OBJECTS,
        method=METHODS,
        digest=DIGESTS,
        value=st.integers(0, 100),
        keys=st.sets(STORAGE_KEYS, min_size=0, max_size=3),
    )
    def store(self, object_id, method, digest, value, keys):
        self.cache.store(object_id, method, digest, value, self._read_set(keys))

    @rule(object_id=OBJECTS, method=METHODS, digest=DIGESTS)
    def lookup(self, object_id, method, digest):
        self.cache.lookup(object_id, method, digest, self._current_get)

    @rule(key=STORAGE_KEYS, value=st.integers(0, 100))
    def commit_write(self, key, value):
        """A commit: mutate storage, then eagerly invalidate readers."""
        self.storage[key] = encode_value(value)
        self.cache.invalidate_keys([key])

    @rule(key=STORAGE_KEYS)
    def commit_delete(self, key):
        self.storage.pop(key, None)
        self.cache.invalidate_keys([key])

    @rule(key=STORAGE_KEYS, value=st.integers(0, 100))
    def write_without_invalidation(self, key, value):
        """A write the cache is *not* told about: later lookups must catch
        it via read-set validation and drop through that path too."""
        self.storage[key] = encode_value(value)

    @rule(keys=st.sets(STORAGE_KEYS, min_size=0, max_size=5))
    def invalidate_many(self, keys):
        self.cache.invalidate_keys(list(keys))

    @rule()
    def clear(self):
        self.cache.clear()

    @invariant()
    def index_matches_entries_exactly(self):
        cache = self.cache
        assert len(cache._entries) <= MAX_ENTRIES
        # forward: every entry is indexed under each of its read-set keys
        for cache_key, entry in cache._entries.items():
            for storage_key in entry.read_set:
                assert cache_key in cache._by_read_key.get(storage_key, set()), (
                    f"{cache_key} reads {storage_key!r} but is not indexed there"
                )
        # backward: every index entry points at a live entry that reads it
        for storage_key, readers in cache._by_read_key.items():
            assert readers, f"empty index set leaked for {storage_key!r}"
            for cache_key in readers:
                entry = cache._entries.get(cache_key)
                assert entry is not None, (
                    f"index for {storage_key!r} references dropped {cache_key}"
                )
                assert storage_key in entry.read_set


CacheIndexMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
TestCacheIndex = CacheIndexMachine.TestCase
