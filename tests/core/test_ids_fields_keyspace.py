"""Unit tests for object ids, field specs/codec, and the key layout."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import CollectionField, FieldKind, ObjectId, ValueField
from repro.core import keyspace
from repro.core.fields import decode_value, encode_value, value_digest
from repro.errors import ModelError


# -- ObjectId -----------------------------------------------------------


def test_generate_is_deterministic_per_seed():
    a = ObjectId.generate(random.Random(1))
    b = ObjectId.generate(random.Random(1))
    assert a == b


def test_from_name_is_stable():
    assert ObjectId.from_name("user:alice") == ObjectId.from_name("user:alice")
    assert ObjectId.from_name("user:alice") != ObjectId.from_name("user:bob")


def test_bad_ids_rejected():
    with pytest.raises(ModelError):
        ObjectId("short")
    with pytest.raises(ModelError):
        ObjectId("G" * 32)


def test_id_is_json_friendly_string():
    import json

    oid = ObjectId.from_name("x")
    assert json.loads(json.dumps([oid])) == [str(oid)]
    assert oid.short == str(oid)[:8]


# -- fields / codec --------------------------------------------------------


def test_field_constructors():
    value = ValueField("name", default="anon")
    collection = CollectionField("posts")
    assert value.kind == FieldKind.VALUE and value.default == "anon"
    assert collection.kind == FieldKind.COLLECTION


def test_bad_field_name_rejected():
    with pytest.raises(ModelError):
        ValueField("has space")
    with pytest.raises(ModelError):
        ValueField("9starts_with_digit")


def test_collection_default_rejected():
    with pytest.raises(ModelError):
        from repro.core.fields import FieldSpec

        FieldSpec("c", FieldKind.COLLECTION, default=[])


def test_codec_roundtrip():
    for value in [None, 0, 1.5, "text", [1, 2], {"a": [True, None]}]:
        assert decode_value(encode_value(value)) == value


def test_codec_is_canonical():
    assert encode_value({"b": 1, "a": 2}) == encode_value({"a": 2, "b": 1})


def test_codec_rejects_non_json():
    with pytest.raises(ModelError):
        encode_value(object())


def test_value_digest_stable_and_sensitive():
    assert value_digest(b"abc") == value_digest(b"abc")
    assert value_digest(b"abc") != value_digest(b"abd")


@given(
    st.recursive(
        st.none() | st.booleans() | st.integers() | st.text(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=20,
    )
)
def test_codec_roundtrip_property(value):
    assert decode_value(encode_value(value)) == value


# -- keyspace ------------------------------------------------------------


OID = ObjectId.from_name("test-object")


def test_all_object_keys_share_prefix():
    prefix = keyspace.object_prefix(OID)
    for key in [
        keyspace.meta_key(OID),
        keyspace.value_key(OID, "name"),
        keyspace.collection_key(OID, "posts", "k1"),
        keyspace.counter_key(OID, "posts"),
    ]:
        assert key.startswith(prefix)


def test_collection_entries_under_collection_prefix():
    prefix = keyspace.collection_prefix(OID, "posts")
    key = keyspace.collection_key(OID, "posts", "entry")
    assert key.startswith(prefix)
    assert keyspace.entry_key_from_storage_key(key, prefix) == "entry"


def test_different_collections_do_not_collide():
    a = keyspace.collection_prefix(OID, "posts")
    b = keyspace.collection_prefix(OID, "posts_extra")
    assert not a.startswith(b) and not b.startswith(a)


def test_append_keys_sort_numerically():
    keys = [keyspace.append_entry_key(n) for n in [1, 2, 10, 99, 100]]
    assert keys == sorted(keys)


def test_prefix_end_is_tight_bound():
    prefix = b"o/abc/"
    end = keyspace.prefix_end(prefix)
    assert prefix < end
    assert (prefix + b"\xff\xff") < end
    assert not (prefix + b"anything").startswith(end)


def test_prefix_end_all_ff_returns_none():
    assert keyspace.prefix_end(b"\xff\xff") is None


@given(st.binary(min_size=1, max_size=8).filter(lambda b: b != b"\xff" * len(b)))
def test_prefix_end_property(prefix):
    end = keyspace.prefix_end(prefix)
    assert end is not None
    assert (prefix + b"\x00") < end
    assert (prefix + b"\xff" * 4) < end
