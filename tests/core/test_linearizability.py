"""Tests for the history recorder and linearizability checker."""

import pytest

from repro.core.linearizability import History, check_linearizable, register_model
from repro.errors import ReproError


def op(history, client, kind, target, start, end, result=None, args=()):
    operation = history.begin(client, kind, target, args, start)
    history.finish(operation, end, result)
    return operation


def check(history):
    initial, apply_fn = register_model()
    return check_linearizable(history, initial, apply_fn)


def test_empty_history_linearizable():
    assert check(History())


def test_sequential_read_your_write():
    h = History()
    op(h, "c1", "write", "x", 0, 1, args=(5,))
    op(h, "c1", "read", "x", 2, 3, result=5)
    assert check(h)


def test_stale_read_after_write_not_linearizable():
    h = History()
    op(h, "c1", "write", "x", 0, 1, args=(5,))
    op(h, "c1", "read", "x", 2, 3, result=None)  # must see 5
    assert not check(h)


def test_concurrent_write_read_either_order_ok():
    h = History()
    op(h, "c1", "write", "x", 0, 10, args=(1,))
    op(h, "c2", "read", "x", 5, 6, result=None)  # read may linearize first
    assert check(h)


def test_concurrent_read_sees_written_value_ok():
    h = History()
    op(h, "c1", "write", "x", 0, 10, args=(1,))
    op(h, "c2", "read", "x", 5, 6, result=1)
    assert check(h)


def test_two_writes_and_ordered_reads():
    h = History()
    op(h, "c1", "write", "x", 0, 1, args=(1,))
    op(h, "c1", "write", "x", 2, 3, args=(2,))
    op(h, "c2", "read", "x", 4, 5, result=2)
    op(h, "c2", "read", "x", 6, 7, result=2)
    assert check(h)


def test_value_reverting_not_linearizable():
    h = History()
    op(h, "c1", "write", "x", 0, 1, args=(1,))
    op(h, "c1", "write", "x", 2, 3, args=(2,))
    op(h, "c2", "read", "x", 4, 5, result=2)
    op(h, "c2", "read", "x", 6, 7, result=1)  # went back in time
    assert not check(h)


def test_independent_targets():
    h = History()
    op(h, "c1", "write", "x", 0, 1, args=(1,))
    op(h, "c2", "write", "y", 0, 1, args=(9,))
    op(h, "c1", "read", "y", 2, 3, result=9)
    op(h, "c2", "read", "x", 2, 3, result=1)
    assert check(h)


def test_initial_state_respected():
    initial, apply_fn = register_model({"x": 42})
    h = History()
    op(h, "c1", "read", "x", 0, 1, result=42)
    assert check_linearizable(h, initial, apply_fn)


def test_incomplete_operations_ignored():
    h = History()
    pending = h.begin("c1", "write", "x", (1,), 0)
    op(h, "c2", "read", "x", 2, 3, result=None)
    assert len(h.completed_operations()) == 1
    assert check(h)
    assert not pending.completed


def test_finish_before_start_rejected():
    h = History()
    operation = h.begin("c1", "read", "x", (), 10)
    with pytest.raises(ReproError):
        h.finish(operation, 5, None)


def test_unknown_op_kind_rejected():
    initial, apply_fn = register_model()
    h = History()
    op(h, "c1", "cas", "x", 0, 1)
    with pytest.raises(ReproError):
        check_linearizable(h, initial, apply_fn)


def test_search_budget_guard():
    h = History()
    # Many fully concurrent conflicting reads force a large search space.
    op(h, "w", "write", "x", 0, 100, args=(1,))
    for i in range(12):
        op(h, f"r{i}", "read", "x", 0, 100, result=1 if i % 2 else None)
    initial, apply_fn = register_model()
    with pytest.raises(ReproError):
        check_linearizable(h, initial, apply_fn, max_states=10)
