"""Unit and property tests for the write set."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.writeset import WriteSet
from repro.kvstore.record import ValueType


def make_writeset(backing=None):
    backing = backing if backing is not None else {}
    return WriteSet(backing.get), backing


def test_read_through_to_backing():
    ws, _ = make_writeset({b"k": b"committed"})
    assert ws.get(b"k") == b"committed"


def test_own_writes_visible_to_own_reads():
    ws, _ = make_writeset({b"k": b"old"})
    ws.put(b"k", b"new")
    assert ws.get(b"k") == b"new"


def test_buffered_delete_hides_committed_value():
    ws, _ = make_writeset({b"k": b"v"})
    ws.delete(b"k")
    assert ws.get(b"k") is None


def test_writes_not_applied_to_backing():
    ws, backing = make_writeset({})
    ws.put(b"k", b"v")
    assert b"k" not in backing


def test_read_set_tracks_first_committed_observation_only():
    ws, _ = make_writeset({b"a": b"1"})
    ws.get(b"a")
    ws.get(b"a")
    ws.get(b"missing")
    reads = ws.read_set()
    assert set(reads) == {b"a", b"missing"}


def test_reads_of_own_writes_not_in_read_set():
    ws, _ = make_writeset({})
    ws.put(b"k", b"v")
    ws.get(b"k")
    assert ws.read_set() == {}


def test_note_read_records_scan_observations():
    ws, _ = make_writeset({})
    ws.note_read(b"scanned", b"value")
    ws.note_read(b"absent", None)
    assert set(ws.read_set()) == {b"scanned", b"absent"}


def test_absent_and_present_digests_differ():
    ws, _ = make_writeset({b"k": b"v"})
    ws.get(b"k")
    ws.get(b"missing")
    reads = ws.read_set()
    assert reads[b"k"] != reads[b"missing"]


def test_to_batch_preserves_order_and_ops():
    ws, _ = make_writeset({})
    ws.put(b"a", b"1")
    ws.delete(b"b")
    ws.put(b"c", b"3")
    ops = list(ws.to_batch().items())
    assert ops == [
        (ValueType.VALUE, b"a", b"1"),
        (ValueType.DELETION, b"b", b""),
        (ValueType.VALUE, b"c", b"3"),
    ]


def test_last_write_per_key_wins_in_batch():
    ws, _ = make_writeset({})
    ws.put(b"k", b"v1")
    ws.put(b"k", b"v2")
    ops = list(ws.to_batch().items())
    assert ops == [(ValueType.VALUE, b"k", b"v2")]


def test_buffered_under_filters_by_prefix():
    ws, _ = make_writeset({})
    ws.put(b"p/a", b"1")
    ws.delete(b"p/b")
    ws.put(b"q/c", b"2")
    under = ws.buffered_under(b"p/")
    assert under == {b"p/a": b"1", b"p/b": None}


def test_clear_resets_everything():
    ws, _ = make_writeset({b"x": b"1"})
    ws.get(b"x")
    ws.put(b"y", b"2")
    ws.clear()
    assert not ws.has_writes
    assert ws.read_set() == {}
    assert ws.written_keys() == []


@given(
    st.lists(
        st.tuples(st.booleans(), st.binary(min_size=1, max_size=4), st.binary(max_size=8)),
        max_size=50,
    )
)
def test_writeset_reads_match_overlay_model(ops):
    backing = {b"base": b"value"}
    ws = WriteSet(backing.get)
    model = dict(backing)
    for is_put, key, value in ops:
        if is_put:
            ws.put(key, value)
            model[key] = value
        else:
            ws.delete(key)
            model.pop(key, None)
    for key in set(model) | {k for _, k, _ in ops} | {b"base"}:
        assert ws.get(key) == model.get(key)
