"""AdmissionController units: gate order, bucket math, LRU, stats."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.qos import AdmissionController, TokenBucket


def make(now=0.0, **kwargs):
    """Controller on a hand-cranked clock; returns (clock_cell, controller)."""
    clock = [now]
    return clock, AdmissionController(lambda: clock[0], **kwargs)


# -- TokenBucket -----------------------------------------------------------


def test_bucket_spends_burst_then_advises_exact_deficit():
    bucket = TokenBucket(rate_per_sec=100.0, burst=5.0, now=0.0)
    for _ in range(5):
        assert bucket.try_take(0.0) == 0.0
    # Empty at 0.1 tokens/ms: one token is 10 ms away, and the advised
    # wait is exactly that deficit (what RetryAfter carries to clients).
    assert bucket.try_take(0.0) == pytest.approx(10.0)


def test_bucket_refills_lazily_and_caps_at_burst():
    bucket = TokenBucket(rate_per_sec=100.0, burst=3.0, now=0.0)
    for _ in range(3):
        assert bucket.try_take(0.0) == 0.0
    assert bucket.try_take(0.0) > 0.0
    # 10 ms refills exactly one token.
    assert bucket.try_take(10.0) == 0.0
    # A long idle period refills to the burst cap, no further: after an
    # hour the fourth take still has to wait.
    assert bucket.try_take(3_600_000.0) == 0.0
    assert bucket.try_take(3_600_000.0) == 0.0
    assert bucket.try_take(3_600_000.0) == 0.0
    assert bucket.try_take(3_600_000.0) > 0.0


def test_bucket_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        TokenBucket(rate_per_sec=0.0, burst=1.0, now=0.0)


# -- gate order ------------------------------------------------------------


def test_concurrency_cap_sheds_until_release():
    _clock, ctrl = make(max_inflight=2)
    assert ctrl.admit("a").admitted
    assert ctrl.admit("a").admitted
    decision = ctrl.admit("a")
    assert not decision.admitted
    assert decision.reason == "concurrency"
    assert decision.retry_after_ms == AdmissionController.CONCURRENCY_RETRY_MS
    ctrl.release()
    assert ctrl.admit("a").admitted
    assert ctrl.inflight == 2


def test_concurrency_gate_checked_before_pressure_and_rate():
    _clock, ctrl = make(
        max_inflight=1,
        tenant_rate_per_sec=1.0,
        pressure_fn=lambda: 10_000,
        pressure_threshold=1,
    )
    assert ctrl.admit("a", readonly=True).admitted  # reads bypass pressure
    # With the cap full, the pressure and rate gates never run: the shed
    # is attributed to (and advised for) the concurrency gate, even for a
    # mutating request under heavy pressure.
    assert ctrl.admit("a", readonly=False).reason == "concurrency"
    assert ctrl.stats.shed_pressure == 0
    assert ctrl.stats.shed_rate == 0


def test_protect_reads_sheds_mutations_only():
    _clock, ctrl = make(
        shed_policy="protect-reads", pressure_fn=lambda: 50, pressure_threshold=32
    )
    decision = ctrl.admit("a", readonly=False)
    assert not decision.admitted
    assert decision.reason == "pressure"
    # Advised wait scales with the queue depth the probe reported.
    assert decision.retry_after_ms == pytest.approx(
        50 * AdmissionController.PRESSURE_RETRY_PER_WAITER_MS
    )
    # The read SLO is the thing being protected: reads keep flowing.
    assert ctrl.admit("a", readonly=True).admitted


def test_shed_policy_none_ignores_pressure():
    _clock, ctrl = make(
        shed_policy="none", pressure_fn=lambda: 10_000, pressure_threshold=1
    )
    assert ctrl.admit("a", readonly=False).admitted
    assert ctrl.stats.shed_pressure == 0


def test_unknown_shed_policy_rejected():
    with pytest.raises(ValueError):
        make(shed_policy="drop-everything")


# -- per-tenant rate gate --------------------------------------------------


def test_rate_gate_is_per_tenant_and_advises_refill_time():
    clock, ctrl = make(tenant_rate_per_sec=1_000.0, tenant_burst=4.0)
    for _ in range(4):
        assert ctrl.admit("hog").admitted
        ctrl.release()
    decision = ctrl.admit("hog")
    assert not decision.admitted
    assert decision.reason == "rate"
    # 1 token/ms: the empty bucket holds a full token in exactly 1 ms.
    assert decision.retry_after_ms == pytest.approx(1.0)
    # Another tenant's bucket is untouched by the hog.
    assert ctrl.admit("quiet").admitted
    # Sleeping the advised delay is exactly enough.
    clock[0] += decision.retry_after_ms
    assert ctrl.admit("hog").admitted


def test_tenant_buckets_are_lru_capped():
    _clock, ctrl = make(
        tenant_rate_per_sec=1_000.0, tenant_burst=1.0, max_tenants=2
    )
    for tenant in ("a", "b", "c"):
        assert ctrl.admit(tenant).admitted
        ctrl.release()
    assert len(ctrl._buckets) == 2
    assert "a" not in ctrl._buckets  # least recently admitting, evicted
    # An evicted tenant restarts with a full burst (errs in its favor):
    # its old bucket was empty, yet it is admitted immediately.
    assert ctrl.admit("a").admitted


def test_release_never_goes_negative():
    _clock, ctrl = make(max_inflight=1)
    ctrl.release()
    ctrl.release()
    assert ctrl.inflight == 0
    assert ctrl.admit("a").admitted
    assert not ctrl.admit("a").admitted  # the cap still holds at 1


# -- stats export ----------------------------------------------------------


def test_stats_exported_to_registry():
    registry = MetricsRegistry()
    clock = [0.0]
    ctrl = AdmissionController(
        lambda: clock[0],
        tenant_rate_per_sec=1_000.0,
        tenant_burst=1.0,
        registry=registry,
        labels={"node": "store-0"},
    )
    assert ctrl.admit("a").admitted
    assert not ctrl.admit("a").admitted  # rate shed
    labels = {"node": "store-0"}
    assert registry.get("admission_admitted", labels).value == 1
    assert registry.get("admission_shed_rate", labels).value == 1
    assert registry.get("admission_inflight", labels).value == 1
    assert registry.get("admission_tenants", labels).value == 1
    assert ctrl.stats.shed_total == 1
