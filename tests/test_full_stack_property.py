"""Property-based full-stack equivalence: random operation scripts must
produce identical observable state on the cluster and the sequential
oracle (LocalRuntime)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.bank import account_type
from repro.cluster import Cluster, ClusterConfig
from repro.core import LocalRuntime, ObjectId
from repro.errors import RequestTimeout
from repro.sim import Simulation

ACCOUNTS = [ObjectId.from_name(f"prop-account-{i}") for i in range(3)]

_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),  # which account
        st.sampled_from(["deposit", "withdraw", "transfer"]),
        st.integers(min_value=1, max_value=40),
    ),
    min_size=1,
    max_size=12,
)


def apply_script(invoke, script):
    """Run a script; returns per-op outcome ('ok'/'err') list."""
    outcomes = []
    for index, (account_index, op, amount) in enumerate(script):
        source = ACCOUNTS[account_index]
        args = (amount,)
        if op == "transfer":
            args = (ACCOUNTS[(account_index + 1) % len(ACCOUNTS)], amount)
        try:
            invoke(source, op, *args)
            outcomes.append("ok")
        except Exception:
            outcomes.append("err")
    return outcomes


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_ops)
def test_cluster_equals_oracle_for_random_scripts(script):
    # Oracle: plain sequential runtime.
    oracle = LocalRuntime(seed=3)
    oracle.register_type(account_type())
    for account in ACCOUNTS:
        oracle.create_object("Account", object_id=account, initial={"balance": 30})
    oracle_outcomes = apply_script(oracle.invoke, script)
    oracle_balances = [oracle.invoke(a, "get_balance") for a in ACCOUNTS]

    # The distributed system, same script, sequential submission.
    sim = Simulation(seed=3)
    cluster = Cluster(sim, ClusterConfig(seed=3))
    cluster.register_type(account_type())
    cluster.start()
    for account in ACCOUNTS:
        cluster.create_object("Account", object_id=account, initial={"balance": 30})
    client = cluster.client("prop")

    def cluster_invoke(oid, method, *args):
        return cluster.run_invoke(client, oid, method, *args)

    cluster_outcomes = apply_script(cluster_invoke, script)
    cluster_balances = [cluster_invoke(a, "get_balance") for a in ACCOUNTS]

    assert cluster_outcomes == oracle_outcomes
    assert cluster_balances == oracle_balances
