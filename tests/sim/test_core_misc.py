"""Simulation core edge cases: re-entrancy, RNG streams, scheduling."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulation
from repro.sim.rand import RandomStreams


def test_negative_delay_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_reentrant_run_rejected():
    sim = Simulation()

    def body(sim):
        yield sim.timeout(1.0)
        sim.run()  # illegal: we're already inside run()

    process = sim.process(body(sim))
    sim.run()
    assert not process.ok
    assert isinstance(process.value, SimulationError)


def test_same_instant_fifo_order():
    sim = Simulation()
    order = []
    for index in range(5):
        sim._schedule(1.0, lambda i=index: order.append(i))
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_run_with_until_leaves_future_work_queued():
    sim = Simulation()
    fired = []
    sim._schedule(10.0, lambda: fired.append("late"))
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == ["late"]


def test_rng_streams_independent():
    sim = Simulation(seed=1)
    a1 = sim.rng("a").random()
    b1 = sim.rng("b").random()
    sim2 = Simulation(seed=1)
    # Drawing from b first must not change what a produces.
    sim2.rng("b").random()
    a2 = sim2.rng("a").random()
    assert a1 == a2
    assert a1 != b1


def test_rng_streams_differ_across_seeds():
    assert Simulation(seed=1).rng("x").random() != Simulation(seed=2).rng("x").random()


def test_random_streams_fork():
    parent = RandomStreams(7)
    child_a = parent.fork("node-a")
    child_b = parent.fork("node-b")
    assert child_a.stream("s").random() != child_b.stream("s").random()
    assert RandomStreams(7).fork("node-a").stream("s").random() == RandomStreams(7).fork(
        "node-a"
    ).stream("s").random()


def test_run_until_triggered_time_limit():
    sim = Simulation()

    def body(sim):
        yield sim.timeout(1000.0)

    process = sim.process(body(sim))
    with pytest.raises(SimulationError, match="limit"):
        sim.run_until_triggered(process, limit=10.0)


def test_clock_monotonic_across_events():
    sim = Simulation()
    stamps = []

    def body(sim):
        for _ in range(10):
            yield sim.timeout(0.5)
            stamps.append(sim.now)

    sim.process(body(sim))
    sim.run()
    assert stamps == sorted(stamps)
    assert stamps[-1] == pytest.approx(5.0)
