"""Unit tests for the network's fault-scripting hooks."""

import pytest

from repro.errors import SimulationError
from repro.sim import BimodalLatency, ConstantLatency, Network, Simulation


def make_net(latency=None):
    sim = Simulation(seed=1)
    net = Network(sim, latency=latency or ConstantLatency(1.0))
    net.add_host("a")
    net.add_host("b")
    return sim, net


def collect(sim, net, host):
    got = []

    def receiver(sim):
        while True:
            msg = yield net.host(host).recv()
            got.append((msg.payload, sim.now))

    sim.process(receiver(sim))
    return got


def test_set_drop_probability_validates_and_drops():
    sim, net = make_net()
    with pytest.raises(SimulationError):
        net.set_drop_probability(1.5)
    got = collect(sim, net, "b")
    net.set_drop_probability(1.0)
    for _ in range(5):
        net.send("a", "b", "lost")
    net.set_drop_probability(0.0)
    net.send("a", "b", "kept")
    sim.run()
    assert [p for p, _t in got] == ["kept"]
    assert net.stats.messages_dropped == 5


def test_link_drop_is_directional():
    sim, net = make_net()
    got_b = collect(sim, net, "b")
    got_a = collect(sim, net, "a")
    net.set_link_drop("a", "b", 1.0)
    net.send("a", "b", "forward")  # dropped
    net.send("b", "a", "reverse")  # unaffected
    net.set_link_drop("a", "b", 0.0)  # probability 0 removes the rule
    net.send("a", "b", "after-clear")
    sim.run()
    assert [p for p, _t in got_b] == ["after-clear"]
    assert [p for p, _t in got_a] == ["reverse"]


def test_clear_link_drops():
    sim, net = make_net()
    got = collect(sim, net, "b")
    net.set_link_drop("a", "b", 1.0)
    net.clear_link_drops()
    net.send("a", "b", "through")
    sim.run()
    assert [p for p, _t in got] == ["through"]


def test_drop_filter_targets_specific_messages():
    sim, net = make_net()
    got = collect(sim, net, "b")
    net.drop_filter = lambda message: message.payload == "evil"
    net.send("a", "b", "evil")
    net.send("a", "b", "fine")
    net.drop_filter = None
    net.send("a", "b", "evil")  # filter removed: delivered
    sim.run()
    assert sorted(p for p, _t in got) == ["evil", "fine"]


def test_isolate_cuts_both_directions():
    sim, net = make_net()
    net.add_host("c")
    got_b = collect(sim, net, "b")
    got_a = collect(sim, net, "a")
    got_c = collect(sim, net, "c")
    net.isolate("a")
    net.send("a", "b", "out")
    net.send("b", "a", "in")
    net.send("b", "c", "bystander")
    sim.run(until=10.0)
    assert got_a == [] and got_b == []
    assert [p for p, _t in got_c] == ["bystander"]
    net.heal()
    net.send("a", "b", "healed")
    sim.run()
    assert [p for p, _t in got_b] == ["healed"]


def test_schedule_runs_scripted_faults():
    sim, net = make_net()
    got = collect(sim, net, "b")
    # at t=5 cut the link, at t=15 heal it
    net.schedule(5.0, lambda: net.partition(["a"], ["b"]))
    net.schedule(15.0, net.heal)

    def sender(sim):
        for n in range(4):  # sends at t = 0, 6, 12, 18
            net.send("a", "b", n)
            yield sim.timeout(6.0)

    sim.process(sender(sim))
    sim.run()
    assert [p for p, _t in got] == [0, 3]  # the sends at t=6 and t=12 were cut


def test_bimodal_latency_reorders():
    sim, net = make_net(latency=BimodalLatency(fast_ms=0.05, slow_ms=5.0, slow_probability=0.5))
    got = collect(sim, net, "b")
    for n in range(20):
        net.send("a", "b", n)
    sim.run()
    order = [p for p, _t in got]
    assert sorted(order) == list(range(20))
    assert order != list(range(20))  # at least one inversion


def test_bimodal_latency_validates():
    with pytest.raises(SimulationError):
        BimodalLatency(fast_ms=5.0, slow_ms=1.0)
    with pytest.raises(SimulationError):
        BimodalLatency(slow_probability=2.0)
