"""Regression tests for the zero-delay now lane and the run-loop merge.

The scheduler keeps two structures in one (time, seq) order: a heap for
future work and a FIFO deque for zero-delay work.  These tests pin the
ordering contract — callbacks execute in global (time, seq) order no
matter which lane they arrived through — and the peek-before-pop limit
behaviour of ``run_until_triggered``.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulation


def test_now_lane_and_heap_interleave_in_seq_order():
    """Zero-delay and delay-0.0 heap entries at one instant keep seq order."""
    sim = Simulation()
    order = []
    sim._schedule(0.0, lambda: order.append("heap-0"))
    sim._schedule_now(lambda: order.append("lane-1"))
    sim._schedule(0.0, lambda: order.append("heap-2"))
    sim._schedule_now(lambda: order.append("lane-3"))
    sim.run()
    assert order == ["heap-0", "lane-1", "heap-2", "lane-3"]


def test_now_lane_runs_before_future_heap_entries():
    sim = Simulation()
    order = []
    sim._schedule(5.0, lambda: order.append("later"))
    sim._schedule_now(lambda: order.append("now"))
    sim.run()
    assert order == ["now", "later"]


def test_now_lane_callbacks_scheduled_during_run_stay_fifo():
    """Lane entries appended mid-run land behind existing same-instant work."""
    sim = Simulation()
    order = []

    def first():
        order.append("first")
        sim._schedule_now(lambda: order.append("first-child"))

    sim._schedule_now(first)
    sim._schedule_now(lambda: order.append("second"))
    sim.run()
    assert order == ["first", "second", "first-child"]


def test_event_trigger_ordering_matches_single_heap_semantics():
    """Triggering events and timeouts at one instant dispatch in seq order."""
    sim = Simulation()
    order = []

    def waiter(name, event):
        yield event
        order.append(name)

    a = sim.event("a")
    b = sim.event("b")
    sim.process(waiter("a", a))
    sim.process(waiter("b", b))

    def firer():
        yield sim.timeout(1.0)
        b.succeed()
        a.succeed()

    sim.process(firer())
    sim.run()
    assert order == ["b", "a"]


def test_run_until_peeks_before_popping_the_limit_entry():
    """An over-limit entry stays queued; catching the error loses nothing."""
    sim = Simulation()
    done = sim.timeout(20.0)
    with pytest.raises(SimulationError, match="limit"):
        sim.run_until_triggered(done, limit=10.0)
    # The clock did not advance and the timeout is still pending.
    assert sim.now == 0.0
    assert not done.triggered
    # Resuming with a higher limit delivers the event at its original time.
    sim.run_until_triggered(done, limit=30.0)
    assert sim.now == 20.0


def test_run_until_limit_applies_to_now_lane_entries():
    sim = Simulation()

    def body():
        yield sim.timeout(50.0)

    process = sim.process(body())
    with pytest.raises(SimulationError, match="limit"):
        sim.run_until_triggered(process, limit=25.0)
    # The process start already ran (it is zero-delay, within the limit);
    # only the 50 ms timeout is still queued.
    assert sim.now == 0.0
    sim.run_until_triggered(process, limit=100.0)
    assert sim.now == 50.0


def test_events_scheduled_counts_both_lanes():
    sim = Simulation()
    before = sim.events_scheduled
    sim._schedule_now(lambda: None)
    sim._schedule(1.0, lambda: None)
    assert sim.events_scheduled == before + 2
    sim.run()
    assert sim.events_scheduled == before + 2
