"""Unit tests for the event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulation


def test_timeout_advances_clock():
    sim = Simulation()
    fired = []

    def body(sim):
        yield sim.timeout(5.0)
        fired.append(sim.now)

    sim.process(body(sim))
    sim.run()
    assert fired == [5.0]


def test_timeout_carries_value():
    sim = Simulation()
    seen = []

    def body(sim):
        value = yield sim.timeout(1.0, value="payload")
        seen.append(value)

    sim.process(body(sim))
    sim.run()
    assert seen == ["payload"]


def test_event_succeed_wakes_waiter():
    sim = Simulation()
    gate = sim.event()
    order = []

    def waiter(sim):
        value = yield gate
        order.append(("woke", value, sim.now))

    def trigger(sim):
        yield sim.timeout(3.0)
        gate.succeed(42)
        order.append(("triggered", sim.now))

    sim.process(waiter(sim))
    sim.process(trigger(sim))
    sim.run()
    assert order == [("triggered", 3.0), ("woke", 42, 3.0)]


def test_event_cannot_trigger_twice():
    sim = Simulation()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_failed_event_raises_in_process():
    sim = Simulation()
    gate = sim.event()
    caught = []

    def body(sim):
        try:
            yield gate
        except ValueError as error:
            caught.append(str(error))

    sim.process(body(sim))
    gate.fail(ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_value_before_trigger_raises():
    sim = Simulation()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_all_of_collects_every_value():
    sim = Simulation()
    results = []

    def body(sim):
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(2.0, value="b")
        values = yield sim.all_of([a, b])
        results.append(sorted(values.values()))
        results.append(sim.now)

    sim.process(body(sim))
    sim.run()
    assert results == [["a", "b"], 2.0]


def test_all_of_empty_succeeds_immediately():
    sim = Simulation()
    done = []

    def body(sim):
        value = yield sim.all_of([])
        done.append(value)

    sim.process(body(sim))
    sim.run()
    assert done == [{}]


def test_all_of_fails_fast_on_child_failure():
    sim = Simulation()
    gate = sim.event()
    caught = []

    def body(sim):
        try:
            yield sim.all_of([gate, sim.timeout(10.0)])
        except RuntimeError:
            caught.append(sim.now)

    sim.process(body(sim))
    gate.fail(RuntimeError("child failed"))
    sim.run()
    assert caught == [0.0]


def test_any_of_returns_first():
    sim = Simulation()
    results = []

    def body(sim):
        slow = sim.timeout(10.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        values = yield sim.any_of([slow, fast])
        results.append(list(values.values()))
        results.append(sim.now)

    sim.process(body(sim))
    sim.run()
    assert results == [["fast"], 1.0]


def test_callback_on_already_triggered_event_runs():
    sim = Simulation()
    event = sim.event()
    event.succeed("x")
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["x"]
