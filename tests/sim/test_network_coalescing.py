"""Unit tests for transport egress coalescing (DESIGN.md §5j).

One wire message per (src, dst) per coalesce window: one latency draw,
one serialisation cost for the summed bytes, one delivery event, and an
atomic drop-or-arrive decision for every frame packed inside.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import ConstantLatency, Network, Simulation


def make_net(latency=None, coalescing=True, window_ms=0.0, **kwargs):
    sim = Simulation(seed=1)
    net = Network(sim, latency=latency or ConstantLatency(1.0), **kwargs)
    if coalescing:
        net.enable_coalescing(window_ms)
    net.add_host("a")
    net.add_host("b")
    net.add_host("c")
    return sim, net


def collect(sim, net, host):
    got = []

    def receiver():
        while True:
            msg = yield net.host(host).recv()
            got.append((msg.payload, sim.now))

    sim.process(receiver())
    return got


def test_same_instant_frames_share_one_wire_message():
    sim, net = make_net()
    got = collect(sim, net, "b")
    net.send("a", "b", "one", size_bytes=0)
    net.send("a", "b", "two", size_bytes=0)
    net.send("a", "b", "three", size_bytes=0)
    sim.run()
    # All three frames arrive at one instant, in send order.
    assert got == [("one", 1.0), ("two", 1.0), ("three", 1.0)]
    stats = net.stats
    assert stats.frames_sent == 3
    assert stats.messages_sent == 1
    assert stats.messages_delivered == 1


def test_distinct_destinations_get_distinct_wire_messages():
    sim, net = make_net()
    collect(sim, net, "b")
    collect(sim, net, "c")
    net.send("a", "b", "to-b", size_bytes=0)
    net.send("a", "c", "to-c", size_bytes=0)
    sim.run()
    assert net.stats.frames_sent == 2
    assert net.stats.messages_sent == 2


def test_serialisation_cost_charged_on_summed_bytes():
    sim = Simulation(seed=1)
    net = Network(sim, latency=ConstantLatency(1.0), bandwidth_mbps=8.0)
    net.enable_coalescing()
    net.add_host("a")
    net.add_host("b")
    got = collect(sim, net, "b")
    # 8 Mbps = 1000 bytes/ms: 1000 + 2000 bytes = 3 ms on top of 1 ms.
    net.send("a", "b", "x", size_bytes=1000)
    net.send("a", "b", "y", size_bytes=2000)
    sim.run()
    assert [t for _p, t in got] == [pytest.approx(4.0), pytest.approx(4.0)]


def test_stats_split_bytes_sent_vs_delivered():
    sim, net = make_net()
    collect(sim, net, "b")
    net.crash("c")
    net.send("a", "b", "ok", size_bytes=100)
    net.send("a", "c", "lost", size_bytes=50)
    sim.run()
    stats = net.stats
    # Send-time bytes include the dropped wire message; delivered do not.
    assert stats.bytes_sent == 150
    assert stats.bytes_delivered == 100
    assert stats.messages_dropped == 1


def test_bytes_split_without_coalescing_too():
    sim, net = make_net(coalescing=False)
    collect(sim, net, "b")
    net.crash("c")
    net.send("a", "b", "ok", size_bytes=100)
    net.send("a", "c", "lost", size_bytes=50)
    sim.run()
    stats = net.stats
    assert stats.frames_sent == 2
    assert stats.messages_sent == 2
    assert stats.bytes_sent == 150
    assert stats.bytes_delivered == 100


def test_coalesce_window_collects_later_frames():
    sim, net = make_net(window_ms=0.5)
    got = collect(sim, net, "b")
    net.send("a", "b", "first", size_bytes=0)
    # A frame sent 0.3 ms later still lands in the same window.
    net.schedule(0.3, lambda: net.send("a", "b", "second", size_bytes=0))
    sim.run()
    assert net.stats.messages_sent == 1
    # One delivery at window close (0.5) + latency (1.0).
    assert [t for _p, t in got] == [pytest.approx(1.5), pytest.approx(1.5)]


def test_drop_filter_drops_whole_wire_message_atomically():
    sim, net = make_net()
    got = collect(sim, net, "b")
    net.drop_filter = lambda m: m.payload == "poison"
    net.send("a", "b", "innocent", size_bytes=0)
    net.send("a", "b", "poison", size_bytes=0)
    sim.run()
    # The wire message carrying both frames drops as a unit.
    assert got == []
    assert net.stats.messages_dropped == 1
    assert net.stats.frames_sent == 2
    net.drop_filter = None
    net.send("a", "b", "after", size_bytes=0)
    sim.run()
    assert [p for p, _t in got] == ["after"]


def test_crash_at_delivery_time_drops_whole_batch():
    sim, net = make_net()
    net.send("a", "b", "one", size_bytes=0)
    net.send("a", "b", "two", size_bytes=0)
    # Crash the destination while the wire message is in flight.
    net.schedule(0.5, lambda: net.crash("b"))
    sim.run()
    assert net.stats.messages_dropped == 1
    assert net.stats.messages_delivered == 0
    assert len(net.host("b").inbox) == 0


def test_loopback_bypasses_coalescing():
    sim, net = make_net(latency=ConstantLatency(10.0))
    got = collect(sim, net, "a")
    net.send("a", "a", "self", size_bytes=0)
    sim.run()
    assert [t for _p, t in got][0] < 1.0
    assert net.stats.messages_sent == 1


def test_piggyback_provider_frames_ride_the_wire_message():
    sim, net = make_net()
    got = collect(sim, net, "b")
    extras = [("piggy", 64)]

    def provider(dst):
        assert dst == "b"
        out, extras[:] = list(extras), []
        return out

    net.set_piggyback_provider("a", provider)
    net.send("a", "b", "carrier", size_bytes=32)
    sim.run()
    assert [p for p, _t in got] == ["carrier", "piggy"]
    stats = net.stats
    assert stats.messages_sent == 1
    assert stats.frames_sent == 2
    assert stats.bytes_sent == 96
    assert stats.bytes_delivered == 96


def test_tap_sees_every_frame_including_piggybacked():
    sim, net = make_net()
    collect(sim, net, "b")
    seen = []
    net.tap = lambda m: seen.append(m.payload)
    net.set_piggyback_provider("a", lambda dst: [("piggy", 8)])
    net.send("a", "b", "carrier", size_bytes=8)
    sim.run(until=0.1)
    assert seen == ["carrier", "piggy"]


def test_event_counts_are_deterministic():
    def run(coalescing):
        sim, net = make_net(coalescing=coalescing)
        collect(sim, net, "b")
        for i in range(10):
            net.send("a", "b", i, size_bytes=0)
        sim.run()
        return sim.events_scheduled, net.stats.messages_sent

    events_a, messages_a = run(True)
    events_b, messages_b = run(True)
    assert (events_a, messages_a) == (events_b, messages_b)
    _events_off, messages_off = run(False)
    assert messages_a == 1
    assert messages_off == 10


def test_negative_window_rejected():
    sim = Simulation(seed=1)
    net = Network(sim)
    with pytest.raises(SimulationError):
        net.enable_coalescing(-1.0)
