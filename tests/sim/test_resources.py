"""Unit tests for Resource and Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import Resource, Simulation, Store


def test_resource_serialises_beyond_capacity():
    sim = Simulation()
    cpu = Resource(sim, capacity=1)
    spans = []

    def job(sim, name, duration):
        req = cpu.request()
        yield req
        start = sim.now
        yield sim.timeout(duration)
        cpu.release()
        spans.append((name, start, sim.now))

    sim.process(job(sim, "a", 5.0))
    sim.process(job(sim, "b", 5.0))
    sim.run()
    assert spans == [("a", 0.0, 5.0), ("b", 5.0, 10.0)]


def test_resource_parallelism_matches_capacity():
    sim = Simulation()
    cpu = Resource(sim, capacity=2)
    ends = []

    def job(sim):
        yield cpu.request()
        yield sim.timeout(4.0)
        cpu.release()
        ends.append(sim.now)

    for _ in range(4):
        sim.process(job(sim))
    sim.run()
    assert ends == [4.0, 4.0, 8.0, 8.0]


def test_release_without_request_raises():
    sim = Simulation()
    cpu = Resource(sim, capacity=1)
    with pytest.raises(SimulationError):
        cpu.release()


def test_bad_capacity_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        Resource(sim, capacity=0)


def test_resource_queue_length_tracks_waiters():
    sim = Simulation()
    cpu = Resource(sim, capacity=1)
    cpu.request()
    cpu.request()
    cpu.request()
    assert cpu.in_use == 1
    assert cpu.queue_length == 2


def test_store_fifo_order():
    sim = Simulation()
    store = Store(sim)
    got = []

    def consumer(sim):
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    sim.process(consumer(sim))
    store.put(1)
    store.put(2)
    store.put(3)
    sim.run()
    assert got == [1, 2, 3]


def test_store_get_blocks_until_put():
    sim = Simulation()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((item, sim.now))

    def producer(sim):
        yield sim.timeout(7.0)
        store.put("late")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got == [("late", 7.0)]


def test_store_drain_empties_queue():
    sim = Simulation()
    store = Store(sim)
    store.put("a")
    store.put("b")
    assert store.drain() == ["a", "b"]
    assert len(store) == 0
