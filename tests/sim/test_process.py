"""Unit tests for simulated processes."""

import pytest

from repro.errors import ProcessKilled, SimulationError
from repro.sim import Simulation


def test_process_return_value_becomes_event_value():
    sim = Simulation()

    def body(sim):
        yield sim.timeout(1.0)
        return "result"

    proc = sim.process(body(sim))
    sim.run()
    assert proc.triggered and proc.ok
    assert proc.value == "result"


def test_process_exception_fails_completion_event():
    sim = Simulation()

    def body(sim):
        yield sim.timeout(1.0)
        raise KeyError("oops")

    proc = sim.process(body(sim))
    sim.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, KeyError)


def test_waiting_on_a_process_propagates_failure():
    sim = Simulation()
    caught = []

    def child(sim):
        yield sim.timeout(1.0)
        raise ValueError("inner")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as error:
            caught.append(str(error))

    sim.process(parent(sim))
    sim.run()
    assert caught == ["inner"]


def test_interrupt_throws_processkilled():
    sim = Simulation()
    log = []

    def body(sim):
        try:
            yield sim.timeout(100.0)
        except ProcessKilled as kill:
            log.append(("killed", sim.now, kill.args[0]))

    proc = sim.process(body(sim))

    def killer(sim):
        yield sim.timeout(5.0)
        proc.interrupt("shutdown")

    sim.process(killer(sim))
    sim.run()
    assert log == [("killed", 5.0, "shutdown")]


def test_unhandled_interrupt_is_clean_cancellation():
    sim = Simulation()

    def body(sim):
        yield sim.timeout(100.0)

    proc = sim.process(body(sim))

    def killer(sim):
        yield sim.timeout(1.0)
        proc.interrupt()

    sim.process(killer(sim))
    sim.run()
    assert proc.triggered and proc.ok
    assert proc.value is None


def test_interrupt_after_completion_is_noop():
    sim = Simulation()

    def body(sim):
        yield sim.timeout(1.0)
        return 7

    proc = sim.process(body(sim))
    sim.run()
    proc.interrupt()
    sim.run()
    assert proc.value == 7


def test_yielding_non_event_fails_process():
    sim = Simulation()

    def body(sim):
        yield 42

    proc = sim.process(body(sim))
    sim.run()
    assert not proc.ok
    assert isinstance(proc.value, SimulationError)


def test_non_generator_rejected():
    sim = Simulation()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_run_until_triggered_returns_value():
    sim = Simulation()

    def body(sim):
        yield sim.timeout(2.5)
        return "done"

    proc = sim.process(body(sim))
    assert sim.run_until_triggered(proc) == "done"
    assert sim.now == 2.5


def test_run_until_triggered_raises_failure():
    sim = Simulation()

    def body(sim):
        yield sim.timeout(1.0)
        raise RuntimeError("bad")

    proc = sim.process(body(sim))
    with pytest.raises(RuntimeError):
        sim.run_until_triggered(proc)


def test_run_until_triggered_detects_deadlock():
    sim = Simulation()
    never = sim.event()
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_triggered(never)


def test_run_until_limit_stops_the_clock():
    sim = Simulation()
    log = []

    def body(sim):
        while True:
            yield sim.timeout(10.0)
            log.append(sim.now)

    sim.process(body(sim))
    sim.run(until=35.0)
    assert log == [10.0, 20.0, 30.0]
    assert sim.now == 35.0
