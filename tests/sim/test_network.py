"""Unit tests for the simulated network."""

import pytest

from repro.errors import SimulationError
from repro.sim import ConstantLatency, LogNormalLatency, Network, Simulation, UniformLatency


def make_net(latency=None):
    sim = Simulation(seed=1)
    net = Network(sim, latency=latency or ConstantLatency(1.0))
    net.add_host("a")
    net.add_host("b")
    return sim, net


def test_message_delivered_after_latency():
    sim, net = make_net()
    got = []

    def receiver(sim):
        msg = yield net.host("b").recv()
        got.append((msg.payload, sim.now))

    sim.process(receiver(sim))
    net.send("a", "b", "hello", size_bytes=0)
    sim.run()
    assert got == [("hello", 1.0)]


def test_loopback_is_fast():
    sim, net = make_net(latency=ConstantLatency(10.0))
    got = []

    def receiver(sim):
        msg = yield net.host("a").recv()
        got.append(sim.now)

    sim.process(receiver(sim))
    net.send("a", "a", "self", size_bytes=0)
    sim.run()
    assert got[0] < 1.0


def test_size_adds_serialisation_delay():
    sim = Simulation()
    net = Network(sim, latency=ConstantLatency(1.0), bandwidth_mbps=8.0)
    net.add_host("a")
    net.add_host("b")
    got = []

    def receiver(sim):
        yield net.host("b").recv()
        got.append(sim.now)

    sim.process(receiver(sim))
    # 8 Mbps = 1000 bytes/ms, so 2000 bytes add 2 ms on top of 1 ms latency.
    net.send("a", "b", "big", size_bytes=2000)
    sim.run()
    assert got == [pytest.approx(3.0)]


def test_crashed_destination_drops_messages():
    sim, net = make_net()
    net.crash("b")
    net.send("a", "b", "lost")
    sim.run()
    assert net.stats.messages_dropped == 1
    assert len(net.host("b").inbox) == 0


def test_crashed_source_cannot_send():
    sim, net = make_net()
    net.crash("a")
    net.send("a", "b", "lost")
    sim.run()
    assert net.stats.messages_dropped == 1


def test_recover_restores_delivery():
    sim, net = make_net()
    net.crash("b")
    net.send("a", "b", "lost")
    sim.run()
    net.recover("b")
    net.send("a", "b", "found")
    sim.run()
    assert len(net.host("b").inbox) == 1


def test_partition_cuts_both_directions():
    sim, net = make_net()
    net.partition(["a"], ["b"])
    net.send("a", "b", "x")
    net.send("b", "a", "y")
    sim.run()
    assert net.stats.messages_dropped == 2
    net.heal()
    net.send("a", "b", "z")
    sim.run()
    assert len(net.host("b").inbox) == 1


def test_drop_probability_drops_roughly_that_fraction():
    sim = Simulation(seed=42)
    net = Network(sim, latency=ConstantLatency(0.1))
    net.add_host("a")
    net.add_host("b")
    net.drop_probability = 0.5
    for _ in range(400):
        net.send("a", "b", "m")
    sim.run()
    assert 120 < net.stats.messages_dropped < 280


def test_duplicate_host_rejected():
    sim, net = make_net()
    with pytest.raises(SimulationError):
        net.add_host("a")


def test_unknown_host_rejected():
    sim, net = make_net()
    with pytest.raises(SimulationError):
        net.send("a", "nope", "x")


def test_stats_count_sends_and_bytes():
    sim, net = make_net()
    net.send("a", "b", "x", size_bytes=100)
    net.send("a", "b", "y", size_bytes=50)
    sim.run()
    assert net.stats.messages_sent == 2
    assert net.stats.bytes_sent == 150
    # Per-link accounting only runs while fault injection is active; the
    # fault-free fast path skips it.
    assert net.stats.per_link == {}


def test_per_link_counts_only_while_faults_active():
    sim, net = make_net()
    net.set_drop_probability(1.0)  # drop everything
    net.send("a", "b", "x")
    net.set_drop_probability(0.0)
    net.send("a", "b", "y")  # fault-free again: not tracked per link
    sim.run()
    assert net.stats.per_link_dropped[("a", "b")] == 1
    assert net.stats.per_link == {}
    assert net.stats.messages_dropped == 1
    assert net.stats.messages_delivered == 1


def test_dropped_messages_do_not_inflate_per_link():
    sim, net = make_net()
    net.drop_filter = lambda message: message.payload == "evil"
    net.send("a", "b", "good")
    net.send("a", "b", "evil")
    net.send("a", "b", "good")
    sim.run()
    assert net.stats.per_link[("a", "b")] == 2
    assert net.stats.per_link_dropped[("a", "b")] == 1
    assert net.stats.messages_dropped == 1


def test_delivery_time_drop_counted_per_link():
    sim, net = make_net()
    net.set_link_drop("b", "a", 0.0001)  # any fault keeps accounting on
    net.send("a", "b", "doomed")
    net.crash("b")  # crashes while the message is in flight
    sim.run()
    assert net.stats.per_link[("a", "b")] == 1  # passed the send-time check
    assert net.stats.per_link_dropped[("a", "b")] == 1  # dropped at delivery
    assert net.stats.messages_delivered == 0


def test_tap_sees_dropped_messages():
    sim, net = make_net()
    seen = []
    net.tap = lambda message: seen.append(message.payload)
    net.drop_filter = lambda message: True
    net.send("a", "b", "dropped-anyway")
    sim.run()
    assert seen == ["dropped-anyway"]
    assert net.stats.messages_dropped == 1


def test_uniform_latency_within_bounds():
    rng = Simulation(seed=3).rng("test")
    model = UniformLatency(1.0, 2.0)
    for _ in range(100):
        assert 1.0 <= model.sample(rng) <= 2.0


def test_lognormal_latency_positive_and_capped():
    rng = Simulation(seed=3).rng("test")
    model = LogNormalLatency(1.0, sigma=0.5, cap_ms=4.0)
    samples = [model.sample(rng) for _ in range(200)]
    assert all(0 < s <= 4.0 for s in samples)


def test_deterministic_across_same_seed():
    def run_once():
        sim = Simulation(seed=99)
        net = Network(sim, latency=LogNormalLatency(0.5))
        net.add_host("a")
        net.add_host("b")
        times = []

        def receiver(sim):
            for _ in range(5):
                yield net.host("b").recv()
                times.append(sim.now)

        sim.process(receiver(sim))
        for _ in range(5):
            net.send("a", "b", "m")
        sim.run()
        return times

    assert run_once() == run_once()
