"""The pluggable SchedulerPolicy seam (PR 10).

The contract: with no policy (or the default FifoPolicy) the simulator
dispatches in global (time, seq) order — byte-identical to the historical
fast loops — while a custom policy may reorder *same-instant* entries,
ask for a fresh candidate collection (RECOLLECT) after mutating state,
and is pinned for the duration of a run.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import RECOLLECT, FifoPolicy, SchedulerPolicy, Simulation


def _trace_workload(sim, order):
    """A mix of lane/heap/future entries that is sensitive to ordering."""
    sim._schedule(0.0, lambda: order.append("heap-0"))
    sim._schedule_now(lambda: order.append("lane-1"))
    sim._schedule(0.0, lambda: order.append("heap-2"))
    sim._schedule(3.0, lambda: order.append("future-3"))
    sim._schedule_now(lambda: order.append("lane-4"))


FIFO_ORDER = ["heap-0", "lane-1", "heap-2", "lane-4", "future-3"]


def test_fifo_policy_matches_default_run():
    default_order, policy_order = [], []
    sim = Simulation()
    _trace_workload(sim, default_order)
    sim.run()

    sim = Simulation()
    sim.set_policy(FifoPolicy())
    _trace_workload(sim, policy_order)
    sim.run()

    assert default_order == policy_order == FIFO_ORDER


def test_fifo_policy_matches_bounded_and_triggered_runs():
    for limit in (None, 10.0):
        order = []
        sim = Simulation()
        sim.set_policy(FifoPolicy())
        _trace_workload(sim, order)
        if limit is None:
            sim.run()
        else:
            sim.run(until=limit)
        assert order == FIFO_ORDER

    order = []
    sim = Simulation()
    sim.set_policy(FifoPolicy())
    _trace_workload(sim, order)
    done = sim.event()
    sim._schedule(5.0, lambda: done.succeed())
    sim.run_until_triggered(done, limit=20.0)
    assert order == FIFO_ORDER


def test_policy_sees_only_same_instant_candidates():
    """Entries at a later instant never compete with the earliest ones."""
    seen = []

    class Spy(SchedulerPolicy):
        def choose(self, now, candidates):
            seen.append((now, len(candidates)))
            return 0

    sim = Simulation()
    sim.set_policy(Spy())
    sim._schedule(0.0, lambda: None)
    sim._schedule_now(lambda: None)
    sim._schedule(2.0, lambda: None)
    sim.run()
    assert seen == [(0.0, 2), (0.0, 1), (2.0, 1)]


def test_policy_can_reorder_same_instant_entries():
    order = []

    class Lifo(SchedulerPolicy):
        def choose(self, now, candidates):
            return len(candidates) - 1

    sim = Simulation()
    sim.set_policy(Lifo())
    for name in ("a", "b", "c"):
        sim._schedule(0.0, lambda name=name: order.append(name))
    sim.run()
    assert order == ["c", "b", "a"]


def test_policy_reorder_preserves_time_ordering_across_instants():
    order = []

    class Lifo(SchedulerPolicy):
        def choose(self, now, candidates):
            return len(candidates) - 1

    sim = Simulation()
    sim.set_policy(Lifo())
    sim._schedule(1.0, lambda: order.append("t1-a"))
    sim._schedule(1.0, lambda: order.append("t1-b"))
    sim._schedule(0.0, lambda: order.append("t0"))
    sim.run()
    assert order == ["t0", "t1-b", "t1-a"]


def test_recollect_refreshes_candidates():
    """A policy may mutate state and ask for a fresh candidate set."""
    order = []

    class CrashThenFifo(SchedulerPolicy):
        def __init__(self, sim):
            self.sim = sim
            self.injected = False

        def choose(self, now, candidates):
            if not self.injected:
                self.injected = True
                # same-instant injection must appear in the next collection
                self.sim._schedule(now, lambda: order.append("injected"))
                return RECOLLECT
            return len(candidates) - 1  # injected entry has the top seq

    sim = Simulation()
    policy = CrashThenFifo(sim)
    sim.set_policy(policy)
    sim._schedule(0.0, lambda: order.append("original"))
    sim.run()
    assert order == ["injected", "original"]


def test_set_policy_rejected_mid_run():
    sim = Simulation()

    def proc():
        with pytest.raises(SimulationError, match="mid-run"):
            sim.set_policy(FifoPolicy())
        yield sim.timeout(1.0)

    sim.process(proc())
    sim.run()


def test_policy_bounded_run_raises_without_popping():
    """The PR 3 peek contract holds for the policy loop too."""
    sim = Simulation()
    sim.set_policy(FifoPolicy())
    fired = []
    sim._schedule(10.0, lambda: fired.append(True))
    done = sim.event()
    with pytest.raises(SimulationError, match="time limit"):
        sim.run_until_triggered(done, limit=5.0)
    assert not fired and (len(sim._queue) + len(sim._now_lane)) == 1
    # the entry is still intact and runs on a later, wider run
    sim.run(until=15.0)
    assert fired == [True]


def test_policy_run_until_deadlock_raises():
    sim = Simulation()
    sim.set_policy(FifoPolicy())
    sim._schedule(1.0, lambda: None)
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_triggered(sim.event())
