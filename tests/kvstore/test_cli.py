"""Tests for the kvstore inspection CLI."""

import pytest

from repro.kvstore import DB
from repro.kvstore.__main__ import main


@pytest.fixture()
def db_dir(tmp_path):
    directory = str(tmp_path / "db")
    with DB.open(directory) as db:
        db.put(b"alpha", b"1")
        db.put(b"beta", b"2")
        db.flush()
    return directory


def test_stats(db_dir, capsys):
    assert main(["stats", db_dir]) == 0
    out = capsys.readouterr().out
    assert "last sequence" in out
    assert "level 0: 1 table(s)" in out


def test_verify_ok(db_dir, capsys):
    assert main(["verify", db_dir]) == 0
    assert "ok:" in capsys.readouterr().out


def test_get_found_and_missing(db_dir, capsys):
    assert main(["get", db_dir, "alpha"]) == 0
    assert capsys.readouterr().out.strip() == "1"
    assert main(["get", db_dir, "nope"]) == 1


def test_scan_with_bounds(db_dir, capsys):
    assert main(["scan", db_dir, "--start", "b"]) == 0
    out = capsys.readouterr().out
    assert "beta = 2" in out and "alpha" not in out


def test_scan_limit(db_dir, capsys):
    assert main(["scan", db_dir, "--limit", "1"]) == 0
    assert "(1 entries)" in capsys.readouterr().out


def test_put_and_delete(db_dir, capsys):
    assert main(["put", db_dir, "gamma", "3"]) == 0
    assert main(["get", db_dir, "gamma"]) == 0
    assert main(["delete", db_dir, "gamma"]) == 0
    assert main(["get", db_dir, "gamma"]) == 1


def test_verify_detects_damage(db_dir, capsys):
    import os

    for name in os.listdir(db_dir):
        if name.endswith(".sst"):
            with open(os.path.join(db_dir, name), "r+b") as file:
                file.seek(10)
                file.write(b"\x00\x00\x00\x00")
    assert main(["verify", db_dir]) == 1
    assert "CORRUPT" in capsys.readouterr().out
