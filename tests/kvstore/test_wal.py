"""Unit tests for the write-ahead log."""

import os

import pytest

from repro.errors import CorruptionError, DBClosedError
from repro.kvstore.wal import WALWriter, read_wal


def test_roundtrip(tmp_path):
    path = str(tmp_path / "test.log")
    with WALWriter(path) as wal:
        wal.append(b"first")
        wal.append(b"second")
        wal.append(b"")
    assert list(read_wal(path)) == [b"first", b"second", b""]


def test_append_after_close_raises(tmp_path):
    path = str(tmp_path / "test.log")
    wal = WALWriter(path)
    wal.close()
    with pytest.raises(DBClosedError):
        wal.append(b"x")


def test_reopen_appends(tmp_path):
    path = str(tmp_path / "test.log")
    with WALWriter(path) as wal:
        wal.append(b"a")
    with WALWriter(path) as wal:
        wal.append(b"b")
    assert list(read_wal(path)) == [b"a", b"b"]


def test_torn_tail_yields_valid_prefix(tmp_path):
    path = str(tmp_path / "test.log")
    with WALWriter(path) as wal:
        wal.append(b"keep me")
        wal.append(b"torn record")
    size = os.path.getsize(path)
    with open(path, "r+b") as file:
        file.truncate(size - 3)
    assert list(read_wal(path)) == [b"keep me"]


def test_bitflip_detected_by_crc(tmp_path):
    path = str(tmp_path / "test.log")
    with WALWriter(path) as wal:
        wal.append(b"aaaa")
        wal.append(b"bbbb")
    with open(path, "r+b") as file:
        file.seek(8)  # inside the first payload
        file.write(b"X")
    assert list(read_wal(path)) == []  # damage in record 1 hides record 2 too


def test_strict_mode_raises_on_damage(tmp_path):
    path = str(tmp_path / "test.log")
    with WALWriter(path) as wal:
        wal.append(b"data")
    with open(path, "r+b") as file:
        file.seek(0)
        file.write(b"\x00\x00\x00\x00")
    with pytest.raises(CorruptionError):
        list(read_wal(path, strict=True))


def test_truncated_header_is_end_of_log(tmp_path):
    path = str(tmp_path / "test.log")
    with WALWriter(path) as wal:
        wal.append(b"ok")
    with open(path, "ab") as file:
        file.write(b"\x01\x02")  # partial next header
    assert list(read_wal(path)) == [b"ok"]


def test_size_reports_bytes(tmp_path):
    path = str(tmp_path / "test.log")
    with WALWriter(path) as wal:
        assert wal.size() == 0
        wal.append(b"12345")
        assert wal.size() == 8 + 5


def test_empty_log_yields_nothing(tmp_path):
    path = str(tmp_path / "empty.log")
    WALWriter(path).close()
    assert list(read_wal(path)) == []
