"""End-to-end tests for the DB facade."""

import os

import pytest

from repro.errors import DBClosedError
from repro.kvstore import DB, DBOptions, WriteBatch


@pytest.fixture()
def db(tmp_path):
    with DB.open(str(tmp_path / "db")) as database:
        yield database


def small_options(**overrides):
    defaults = dict(
        memtable_size_bytes=4096,
        block_cache_bytes=64 * 1024,
        level_base_bytes=16 * 1024,
        l0_compaction_trigger=3,
    )
    defaults.update(overrides)
    return DBOptions(**defaults)


def test_put_get(db):
    db.put(b"key", b"value")
    assert db.get(b"key") == b"value"


def test_get_missing_returns_none(db):
    assert db.get(b"missing") is None


def test_overwrite(db):
    db.put(b"k", b"v1")
    db.put(b"k", b"v2")
    assert db.get(b"k") == b"v2"


def test_delete(db):
    db.put(b"k", b"v")
    db.delete(b"k")
    assert db.get(b"k") is None


def test_delete_missing_is_ok(db):
    db.delete(b"never-existed")
    assert db.get(b"never-existed") is None


def test_batch_is_atomic_in_order(db):
    batch = WriteBatch()
    batch.put(b"a", b"1")
    batch.put(b"a", b"2")  # later op in the same batch wins
    batch.delete(b"b")
    db.write(batch)
    assert db.get(b"a") == b"2"
    assert db.get(b"b") is None


def test_empty_batch_noop(db):
    before = db.last_sequence
    db.write(WriteBatch())
    assert db.last_sequence == before


def test_iterate_sorted(db):
    for key in [b"c", b"a", b"b"]:
        db.put(key, b"v-" + key)
    assert [k for k, _ in db.iterate()] == [b"a", b"b", b"c"]


def test_iterate_range_bounds(db):
    for i in range(10):
        db.put(b"k%02d" % i, b"v")
    keys = [k for k, _ in db.iterate(start=b"k03", end=b"k07")]
    assert keys == [b"k03", b"k04", b"k05", b"k06"]


def test_iterate_skips_deleted(db):
    db.put(b"a", b"1")
    db.put(b"b", b"2")
    db.delete(b"a")
    assert [k for k, _ in db.iterate()] == [b"b"]


def test_snapshot_isolates_reads(db):
    db.put(b"k", b"old")
    with db.snapshot() as snap:
        db.put(b"k", b"new")
        assert db.get(b"k", snapshot=snap) == b"old"
        assert db.get(b"k") == b"new"


def test_snapshot_sees_through_flush_and_compaction(tmp_path):
    with DB.open(str(tmp_path / "db"), small_options()) as db:
        db.put(b"k", b"old")
        snap = db.snapshot()
        for i in range(500):
            db.put(b"fill%04d" % i, b"x" * 64)
        db.put(b"k", b"new")
        db.flush()
        assert db.get(b"k", snapshot=snap) == b"old"
        snap.release()


def test_flush_creates_l0_file(tmp_path):
    with DB.open(str(tmp_path / "db")) as db:
        db.put(b"k", b"v")
        db.flush()
        assert db.level_file_counts()[0] == 1
        assert db.get(b"k") == b"v"


def test_reopen_recovers_from_wal(tmp_path):
    path = str(tmp_path / "db")
    with DB.open(path) as db:
        db.put(b"durable", b"yes")
        db.put(b"gone", b"x")
        db.delete(b"gone")
    with DB.open(path) as db:
        assert db.get(b"durable") == b"yes"
        assert db.get(b"gone") is None


def test_reopen_recovers_from_sstables(tmp_path):
    path = str(tmp_path / "db")
    with DB.open(path) as db:
        for i in range(100):
            db.put(b"key%03d" % i, b"value%03d" % i)
        db.flush()
    with DB.open(path) as db:
        for i in range(100):
            assert db.get(b"key%03d" % i) == b"value%03d" % i


def test_reopen_preserves_sequence_monotonicity(tmp_path):
    path = str(tmp_path / "db")
    with DB.open(path) as db:
        db.put(b"a", b"1")
        seq_before = db.last_sequence
    with DB.open(path) as db:
        assert db.last_sequence >= seq_before
        db.put(b"b", b"2")
        assert db.last_sequence > seq_before


def test_many_writes_trigger_flush_and_compaction(tmp_path):
    with DB.open(str(tmp_path / "db"), small_options()) as db:
        for i in range(2000):
            db.put(b"key%05d" % (i % 500), b"value-%05d" % i)
        assert db.stats.flushes > 0
        # Every key must read back its newest value through all levels.
        for i in range(500):
            expected = b"value-%05d" % (1500 + i)
            assert db.get(b"key%05d" % i) == expected


def test_compaction_reclaims_files(tmp_path):
    with DB.open(str(tmp_path / "db"), small_options()) as db:
        for i in range(3000):
            db.put(b"key%05d" % (i % 200), b"x" * 100)
        db.flush()
        live = {f for f in os.listdir(str(tmp_path / "db")) if f.endswith(".sst")}
        assert len(live) == sum(db.level_file_counts())


def test_deletes_survive_compaction(tmp_path):
    with DB.open(str(tmp_path / "db"), small_options()) as db:
        for i in range(300):
            db.put(b"key%04d" % i, b"v" * 50)
        db.flush()
        db.delete(b"key0100")
        db.flush()
        db.compact_range(0)
        assert db.get(b"key0100") is None
        assert db.get(b"key0101") is not None


def test_operations_after_close_raise(tmp_path):
    db = DB.open(str(tmp_path / "db"))
    db.close()
    with pytest.raises(DBClosedError):
        db.put(b"k", b"v")
    with pytest.raises(DBClosedError):
        db.get(b"k")
    db.close()  # idempotent


def test_iterate_merges_memtable_and_tables(tmp_path):
    with DB.open(str(tmp_path / "db")) as db:
        db.put(b"a", b"flushed")
        db.flush()
        db.put(b"b", b"in-mem")
        db.put(b"a", b"updated")
        assert list(db.iterate()) == [(b"a", b"updated"), (b"b", b"in-mem")]


def test_stats_counters(tmp_path):
    with DB.open(str(tmp_path / "db")) as db:
        db.put(b"a", b"1")
        db.delete(b"a")
        db.get(b"a")
        assert db.stats.puts == 1
        assert db.stats.deletes == 1
        assert db.stats.gets == 1


def test_large_values_roundtrip(tmp_path):
    with DB.open(str(tmp_path / "db")) as db:
        big = os.urandom(256 * 1024)
        db.put(b"big", big)
        db.flush()
        assert db.get(b"big") == big
