"""Unit tests for compaction picking and version pruning."""

from repro.kvstore.compaction import pick_compaction, prune_versions
from repro.kvstore.record import InternalRecord, ValueType
from repro.kvstore.version import FileMetadata, VersionEdit, VersionSet


def meta(number, smallest, largest, size=1000):
    return FileMetadata(number, smallest, largest, size, entry_count=10)


def versions_with(files_by_level):
    versions = VersionSet("/nonexistent")
    edit = VersionEdit()
    for level, files in files_by_level.items():
        for file in files:
            edit.added.append((level, file))
    versions.apply(edit)
    return versions


def test_no_compaction_when_healthy():
    versions = versions_with({0: [meta(1, b"a", b"z")]})
    assert pick_compaction(versions) is None


def test_l0_trigger_fires_at_threshold():
    files = [meta(i, b"a", b"z") for i in range(1, 5)]
    versions = versions_with({0: files})
    compaction = pick_compaction(versions, l0_trigger=4)
    assert compaction is not None
    assert compaction.level == 0
    assert len(compaction.inputs_upper) == 4


def test_l0_compaction_pulls_overlapping_l1_files():
    l0 = [meta(i, b"c", b"m") for i in range(1, 5)]
    l1 = [meta(10, b"a", b"d"), meta(11, b"n", b"z")]
    versions = versions_with({0: l0, 1: l1})
    compaction = pick_compaction(versions)
    assert [f.number for f in compaction.inputs_lower] == [10]


def test_level_size_trigger():
    big = [meta(i, b"a%d" % i, b"b%d" % i, size=5 * 1024 * 1024) for i in range(1, 4)]
    versions = versions_with({1: big})
    compaction = pick_compaction(versions, base_bytes=8 * 1024 * 1024)
    assert compaction is not None
    assert compaction.level == 1
    assert len(compaction.inputs_upper) == 1


def prune(records, snapshots, drop_tombstones=False):
    return list(prune_versions(records, snapshots, drop_tombstones))


def test_prune_keeps_only_newest_without_snapshots():
    records = [
        InternalRecord(b"k", 5, ValueType.VALUE, b"v5"),
        InternalRecord(b"k", 3, ValueType.VALUE, b"v3"),
        InternalRecord(b"k", 1, ValueType.VALUE, b"v1"),
    ]
    kept = prune(records, snapshots=[10])
    assert [(r.sequence) for r in kept] == [5]


def test_prune_preserves_snapshot_visible_versions():
    records = [
        InternalRecord(b"k", 5, ValueType.VALUE, b"v5"),
        InternalRecord(b"k", 3, ValueType.VALUE, b"v3"),
        InternalRecord(b"k", 1, ValueType.VALUE, b"v1"),
    ]
    # Snapshot at 2 still needs v1; snapshot at 4 needs v3; head needs v5.
    kept = prune(records, snapshots=[2, 4, 10])
    assert [r.sequence for r in kept] == [5, 3, 1]


def test_prune_drops_future_records_never():
    # A record newer than every snapshot boundary cannot be claimed and is
    # dropped only if a newer version already claimed all boundaries — with
    # a single record nothing shadows it, head snapshot must keep it.
    records = [InternalRecord(b"k", 5, ValueType.VALUE, b"v5")]
    kept = prune(records, snapshots=[5])
    assert len(kept) == 1


def test_prune_handles_multiple_keys_independently():
    records = [
        InternalRecord(b"a", 4, ValueType.VALUE, b"a4"),
        InternalRecord(b"a", 2, ValueType.VALUE, b"a2"),
        InternalRecord(b"b", 3, ValueType.VALUE, b"b3"),
    ]
    kept = prune(records, snapshots=[10])
    assert [(r.user_key, r.sequence) for r in kept] == [(b"a", 4), (b"b", 3)]


def test_tombstone_dropped_at_bottom_when_nothing_older_survives():
    records = [
        InternalRecord(b"k", 5, ValueType.DELETION, b""),
        InternalRecord(b"k", 3, ValueType.VALUE, b"v3"),
    ]
    kept = prune(records, snapshots=[10], drop_tombstones=True)
    assert kept == []


def test_tombstone_kept_when_snapshot_needs_older_version():
    records = [
        InternalRecord(b"k", 5, ValueType.DELETION, b""),
        InternalRecord(b"k", 3, ValueType.VALUE, b"v3"),
    ]
    # Snapshot at 4 must still see v3, so the tombstone must keep shadowing
    # it for the head snapshot.
    kept = prune(records, snapshots=[4, 10], drop_tombstones=True)
    assert [(r.sequence, r.is_deletion) for r in kept] == [(5, True), (3, False)]


def test_tombstone_kept_when_not_bottom_level():
    records = [InternalRecord(b"k", 5, ValueType.DELETION, b"")]
    kept = prune(records, snapshots=[10], drop_tombstones=False)
    assert len(kept) == 1 and kept[0].is_deletion
