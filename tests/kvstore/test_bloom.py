"""Unit and property tests for the bloom filter."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.kvstore.bloom import BloomFilter


def test_contains_all_inserted_keys():
    keys = [f"key-{i}".encode() for i in range(1000)]
    filt = BloomFilter.build(keys)
    assert all(filt.may_contain(k) for k in keys)


def test_false_positive_rate_reasonable():
    keys = [f"present-{i}".encode() for i in range(2000)]
    filt = BloomFilter.build(keys, bits_per_key=10)
    false_positives = sum(
        filt.may_contain(f"absent-{i}".encode()) for i in range(2000)
    )
    # 10 bits/key targets ~1%; allow generous slack.
    assert false_positives < 100


def test_empty_filter_rejects_everything_or_nothing_safely():
    filt = BloomFilter.build([])
    # No inserted keys: must never claim false negatives (vacuous) and
    # typically rejects arbitrary keys.
    assert not filt.may_contain(b"anything")


def test_encode_decode_roundtrip():
    keys = [f"k{i}".encode() for i in range(100)]
    filt = BloomFilter.build(keys)
    decoded = BloomFilter.decode(filt.encode())
    assert all(decoded.may_contain(k) for k in keys)


def test_decode_rejects_short_data():
    with pytest.raises(CorruptionError):
        BloomFilter.decode(b"\x01")


def test_decode_rejects_zero_probes():
    with pytest.raises(CorruptionError):
        BloomFilter.decode(b"\x00" + b"\xff" * 8)


def test_bad_bits_per_key_rejected():
    with pytest.raises(ValueError):
        BloomFilter.build([b"k"], bits_per_key=0)


@given(st.lists(st.binary(max_size=32), max_size=200))
def test_no_false_negatives_property(keys):
    filt = BloomFilter.build(keys, bits_per_key=8)
    for key in keys:
        assert filt.may_contain(key)


@given(st.lists(st.binary(max_size=32), max_size=100))
def test_serialisation_preserves_membership(keys):
    filt = BloomFilter.build(keys)
    decoded = BloomFilter.decode(filt.encode())
    for key in keys:
        assert decoded.may_contain(key)
