"""Unit tests for SSTable writer/reader."""

import pytest

from repro.errors import CorruptionError
from repro.kvstore.cache import LRUCache
from repro.kvstore.record import InternalRecord, MAX_SEQUENCE, ValueType
from repro.kvstore.sstable import SSTableReader, SSTableWriter


def write_table(tmp_path, records, name="t.sst", **kwargs):
    path = str(tmp_path / name)
    writer = SSTableWriter(path, **kwargs)
    for record in records:
        writer.add(record)
    meta = writer.finish()
    return path, meta


def make_records(count, value_size=10):
    return [
        InternalRecord(b"key%06d" % i, i + 1, ValueType.VALUE, b"v" * value_size)
        for i in range(count)
    ]


def test_point_reads(tmp_path):
    records = make_records(500)
    path, _meta = write_table(tmp_path, records)
    reader = SSTableReader(path, table_id=1)
    for record in records[::37]:
        found = reader.get(record.user_key, MAX_SEQUENCE)
        assert found is not None and found.value == record.value
    assert reader.get(b"nope", MAX_SEQUENCE) is None
    reader.close()


def test_meta_reports_bounds(tmp_path):
    records = make_records(100)
    _path, meta = write_table(tmp_path, records)
    assert meta.smallest == b"key000000"
    assert meta.largest == b"key000099"
    assert meta.entry_count == 100
    assert meta.size_bytes > 0


def test_sequence_filtering(tmp_path):
    records = [
        InternalRecord(b"k", 9, ValueType.VALUE, b"new"),
        InternalRecord(b"k", 3, ValueType.VALUE, b"old"),
    ]
    path, _ = write_table(tmp_path, records)
    reader = SSTableReader(path, table_id=1)
    assert reader.get(b"k", MAX_SEQUENCE).value == b"new"
    assert reader.get(b"k", 5).value == b"old"
    assert reader.get(b"k", 1) is None
    reader.close()


def test_full_iteration_sorted(tmp_path):
    records = make_records(1000, value_size=50)
    path, _ = write_table(tmp_path, records)
    reader = SSTableReader(path, table_id=1)
    assert list(reader) == records
    reader.close()


def test_iterate_from_mid_table(tmp_path):
    records = make_records(300)
    path, _ = write_table(tmp_path, records)
    reader = SSTableReader(path, table_id=1)
    tail = list(reader.iterate_from(b"key000150", MAX_SEQUENCE))
    assert tail == records[150:]
    reader.close()


def test_out_of_order_add_rejected(tmp_path):
    writer = SSTableWriter(str(tmp_path / "bad.sst"))
    writer.add(InternalRecord(b"b", 1, ValueType.VALUE, b""))
    with pytest.raises(CorruptionError):
        writer.add(InternalRecord(b"a", 2, ValueType.VALUE, b""))


def test_empty_table_rejected(tmp_path):
    writer = SSTableWriter(str(tmp_path / "empty.sst"))
    with pytest.raises(CorruptionError):
        writer.finish()


def test_bad_magic_rejected(tmp_path):
    records = make_records(10)
    path, _ = write_table(tmp_path, records)
    with open(path, "r+b") as file:
        file.seek(-4, 2)
        file.write(b"\x00\x00\x00\x00")
    with pytest.raises(CorruptionError):
        SSTableReader(path, table_id=1)


def test_block_cache_hit_on_reread(tmp_path):
    records = make_records(2000, value_size=20)
    path, _ = write_table(tmp_path, records)
    cache = LRUCache(1 << 20)
    reader = SSTableReader(path, table_id=7, cache=cache)
    reader.get(b"key000100", MAX_SEQUENCE)
    misses_after_first = cache.stats.misses
    reader.get(b"key000100", MAX_SEQUENCE)
    assert cache.stats.hits >= 1
    assert cache.stats.misses == misses_after_first
    reader.close()


def test_bloom_filter_skips_absent_keys(tmp_path):
    records = make_records(100)
    path, _ = write_table(tmp_path, records)
    reader = SSTableReader(path, table_id=1)
    hits = sum(reader.may_contain(b"absent-%d" % i) for i in range(1000))
    assert hits < 100  # mostly filtered out
    reader.close()


def test_multi_block_boundaries(tmp_path):
    # Values large enough to force many blocks; check keys at block edges.
    records = make_records(400, value_size=200)
    path, _ = write_table(tmp_path, records)
    reader = SSTableReader(path, table_id=1)
    for record in records:
        found = reader.get(record.user_key, MAX_SEQUENCE)
        assert found is not None, record.user_key
    reader.close()


def test_abandon_removes_file(tmp_path):
    path = str(tmp_path / "gone.sst")
    writer = SSTableWriter(path)
    writer.add(InternalRecord(b"a", 1, ValueType.VALUE, b""))
    writer.abandon()
    import os

    assert not os.path.exists(path)
