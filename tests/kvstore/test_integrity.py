"""Tests for the full-scan integrity checker."""

import os

import pytest

from repro.errors import CorruptionError
from repro.kvstore import DB, DBOptions


def small_options():
    return DBOptions(
        memtable_size_bytes=2048,
        level_base_bytes=8 * 1024,
        l0_compaction_trigger=2,
    )


def populated_db(tmp_path, count=400):
    db = DB.open(str(tmp_path / "db"), small_options())
    for i in range(count):
        db.put(b"key%05d" % i, b"value-%05d" % i)
    db.flush()
    return db


def test_healthy_db_verifies(tmp_path):
    with populated_db(tmp_path) as db:
        result = db.verify_integrity()
        assert result["tables"] >= 1
        assert result["records"] >= 400


def test_empty_db_verifies(tmp_path):
    with DB.open(str(tmp_path / "db")) as db:
        assert db.verify_integrity() == {"tables": 0, "records": 0}


def test_verify_after_compactions(tmp_path):
    with populated_db(tmp_path, count=1500) as db:
        db.compact_range(0)
        result = db.verify_integrity()
        assert result["records"] > 0


def test_bitflip_in_table_detected(tmp_path):
    db = populated_db(tmp_path)
    directory = str(tmp_path / "db")
    db_path = None
    for name in sorted(os.listdir(directory)):
        if name.endswith(".sst"):
            db_path = os.path.join(directory, name)
            break
    assert db_path is not None
    # Reopen cleanly so no cached blocks mask the damage.
    db.close()
    with open(db_path, "r+b") as file:
        file.seek(100)
        file.write(b"\xde\xad")
    with DB.open(directory, small_options()) as db:
        with pytest.raises(CorruptionError):
            db.verify_integrity()


def test_verify_on_closed_db_raises(tmp_path):
    db = populated_db(tmp_path)
    db.close()
    from repro.errors import DBClosedError

    with pytest.raises(DBClosedError):
        db.verify_integrity()
