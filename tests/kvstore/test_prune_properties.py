"""Property test: version pruning preserves snapshot visibility.

For every live snapshot boundary, the value visible after pruning must be
exactly the value visible before — pruning may only drop record versions
no snapshot can observe.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.kvstore.compaction import prune_versions
from repro.kvstore.record import InternalRecord, ValueType


def visible_at(records, sequence):
    """Newest record visible at ``sequence`` (None if none)."""
    best = None
    for record in records:
        if record.sequence <= sequence and (best is None or record.sequence > best.sequence):
            best = record
    return best


def lookup(records, sequence):
    """User-visible value at ``sequence``: bytes or None (absent/deleted)."""
    record = visible_at(records, sequence)
    if record is None or record.is_deletion:
        return None
    return record.value


_versions = st.lists(
    st.tuples(st.booleans(), st.binary(max_size=6)), min_size=1, max_size=8
)
_key_count = st.integers(min_value=1, max_value=3)
_snapshots = st.sets(st.integers(min_value=1, max_value=30), min_size=1, max_size=4)


@given(
    st.dictionaries(st.binary(min_size=1, max_size=3), _versions, min_size=1, max_size=3),
    _snapshots,
    st.booleans(),
)
def test_prune_preserves_per_snapshot_visibility(version_map, snapshots, drop_tombstones):
    # Build internal records: per key, versions get distinct sequences.
    all_records = []
    sequence = 0
    for key in sorted(version_map):
        for is_deletion, value in version_map[key]:
            sequence += 1
            kind = ValueType.DELETION if is_deletion else ValueType.VALUE
            all_records.append(InternalRecord(key, sequence, kind, b"" if is_deletion else value))
    head = sequence
    boundaries = sorted(set(snapshots) | {head})
    ordered = sorted(all_records, key=lambda r: r.sort_key())

    pruned = list(prune_versions(ordered, boundaries, drop_tombstones))

    # Output stays sorted and is a subset of the input.
    assert [r.sort_key() for r in pruned] == sorted(r.sort_key() for r in pruned)
    assert set(pruned) <= set(all_records)

    for key in version_map:
        key_before = [r for r in all_records if r.user_key == key]
        key_after = [r for r in pruned if r.user_key == key]
        for boundary in boundaries:
            assert lookup(key_after, boundary) == lookup(key_before, boundary), (
                key,
                boundary,
            )
