"""Unit and property tests for varint encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.kvstore.varint import decode_varint, encode_varint


@pytest.mark.parametrize(
    "value,encoded",
    [
        (0, b"\x00"),
        (1, b"\x01"),
        (127, b"\x7f"),
        (128, b"\x80\x01"),
        (300, b"\xac\x02"),
    ],
)
def test_known_encodings(value, encoded):
    assert encode_varint(value) == encoded
    assert decode_varint(encoded) == (value, len(encoded))


def test_negative_rejected():
    with pytest.raises(ValueError):
        encode_varint(-1)


def test_truncated_input_raises():
    with pytest.raises(CorruptionError):
        decode_varint(b"\x80")


def test_overlong_input_raises():
    with pytest.raises(CorruptionError):
        decode_varint(b"\xff" * 11)


def test_decode_at_offset():
    data = b"junk" + encode_varint(500)
    assert decode_varint(data, 4)[0] == 500


@given(st.integers(min_value=0, max_value=2**63 - 1))
def test_roundtrip(value):
    encoded = encode_varint(value)
    decoded, consumed = decode_varint(encoded)
    assert decoded == value
    assert consumed == len(encoded)
