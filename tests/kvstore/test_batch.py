"""Unit and property tests for WriteBatch."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.kvstore.batch import WriteBatch
from repro.kvstore.record import ValueType


def test_put_delete_recorded_in_order():
    batch = WriteBatch()
    batch.put(b"a", b"1").delete(b"b").put(b"c", b"3")
    ops = list(batch.items())
    assert ops == [
        (ValueType.VALUE, b"a", b"1"),
        (ValueType.DELETION, b"b", b""),
        (ValueType.VALUE, b"c", b"3"),
    ]


def test_len_and_bool():
    batch = WriteBatch()
    assert not batch
    assert len(batch) == 0
    batch.put(b"k", b"v")
    assert batch
    assert len(batch) == 1


def test_clear():
    batch = WriteBatch()
    batch.put(b"k", b"v")
    batch.clear()
    assert not batch


def test_extend_appends():
    a = WriteBatch()
    a.put(b"x", b"1")
    b = WriteBatch()
    b.delete(b"y")
    a.extend(b)
    assert len(a) == 2


def test_non_bytes_rejected():
    batch = WriteBatch()
    with pytest.raises(TypeError):
        batch.put("str", b"v")  # type: ignore[arg-type]
    with pytest.raises(TypeError):
        batch.put(b"k", 123)  # type: ignore[arg-type]


def test_encode_decode_roundtrip_simple():
    batch = WriteBatch()
    batch.put(b"key", b"value").delete(b"gone").put(b"", b"")
    decoded = WriteBatch.decode(batch.encode())
    assert list(decoded.items()) == list(batch.items())


def test_decode_rejects_trailing_garbage():
    data = WriteBatch().encode() + b"x"
    with pytest.raises(CorruptionError):
        WriteBatch.decode(data)


def test_decode_rejects_bad_kind():
    batch = WriteBatch()
    batch.put(b"k", b"v")
    data = bytearray(batch.encode())
    data[1] = 9  # corrupt the op kind byte
    with pytest.raises(CorruptionError):
        WriteBatch.decode(bytes(data))


def test_decode_rejects_truncation():
    batch = WriteBatch()
    batch.put(b"key", b"value")
    data = batch.encode()
    with pytest.raises(CorruptionError):
        WriteBatch.decode(data[:-2])


_ops = st.lists(
    st.tuples(
        st.booleans(),
        st.binary(max_size=64),
        st.binary(max_size=256),
    ),
    max_size=50,
)


@given(_ops)
def test_roundtrip_property(ops):
    batch = WriteBatch()
    for is_put, key, value in ops:
        if is_put:
            batch.put(key, value)
        else:
            batch.delete(key)
    decoded = WriteBatch.decode(batch.encode())
    assert list(decoded.items()) == list(batch.items())
