"""Property-based model tests: the DB must behave like a dict with order.

Random operation sequences (puts, deletes, flushes, compactions, reopens)
run against both the DB and a plain dict; every observable read must agree.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kvstore import DB, DBOptions, WriteBatch

_keys = st.binary(min_size=1, max_size=6)
_values = st.binary(max_size=40)

_op = st.one_of(
    st.tuples(st.just("put"), _keys, _values),
    st.tuples(st.just("delete"), _keys, st.just(b"")),
    st.tuples(st.just("flush"), st.just(b""), st.just(b"")),
    st.tuples(st.just("reopen"), st.just(b""), st.just(b"")),
)


def tiny_options():
    return DBOptions(
        memtable_size_bytes=512,
        block_cache_bytes=16 * 1024,
        level_base_bytes=2 * 1024,
        l0_compaction_trigger=2,
    )


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.lists(_op, max_size=60))
def test_db_matches_dict_model(tmp_path_factory, ops):
    directory = str(tmp_path_factory.mktemp("dbprop"))
    db = DB.open(directory, tiny_options())
    model: dict[bytes, bytes] = {}
    try:
        for op, key, value in ops:
            if op == "put":
                db.put(key, value)
                model[key] = value
            elif op == "delete":
                db.delete(key)
                model.pop(key, None)
            elif op == "flush":
                db.flush()
            elif op == "reopen":
                db.close()
                db = DB.open(directory, tiny_options())
        for key, expected in model.items():
            assert db.get(key) == expected
        assert dict(db.iterate()) == model
        assert [k for k, _ in db.iterate()] == sorted(model)
    finally:
        db.close()


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    st.dictionaries(_keys, _values, min_size=1, max_size=30),
    st.dictionaries(_keys, _values, max_size=30),
)
def test_snapshot_reads_frozen_under_later_writes(tmp_path_factory, initial, updates):
    directory = str(tmp_path_factory.mktemp("dbsnap"))
    with DB.open(directory, tiny_options()) as db:
        for key, value in initial.items():
            db.put(key, value)
        with db.snapshot() as snap:
            for key, value in updates.items():
                db.put(key, value + b"-new")
            db.flush()
            for key, value in initial.items():
                assert db.get(key, snapshot=snap) == value


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(st.lists(st.tuples(_keys, _values), min_size=1, max_size=40))
def test_batch_atomicity_across_reopen(tmp_path_factory, pairs):
    directory = str(tmp_path_factory.mktemp("dbbatch"))
    batch = WriteBatch()
    for key, value in pairs:
        batch.put(key, value)
    with DB.open(directory, tiny_options()) as db:
        db.write(batch)
    expected = {key: value for key, value in pairs}  # last write per key wins
    with DB.open(directory, tiny_options()) as db:
        for key, value in expected.items():
            assert db.get(key) == value
