"""Unit tests for the LRU block cache."""

import pytest

from repro.kvstore.cache import LRUCache


def test_get_miss_returns_none():
    cache = LRUCache(100)
    assert cache.get("missing") is None
    assert cache.stats.misses == 1


def test_put_get_hit():
    cache = LRUCache(100)
    cache.put("k", "value", charge=10)
    assert cache.get("k") == "value"
    assert cache.stats.hits == 1


def test_eviction_respects_lru_order():
    cache = LRUCache(30)
    cache.put("a", 1, charge=10)
    cache.put("b", 2, charge=10)
    cache.put("c", 3, charge=10)
    cache.get("a")  # touch a so b is the LRU entry
    cache.put("d", 4, charge=10)
    assert cache.get("b") is None
    assert cache.get("a") == 1


def test_oversized_entry_not_retained():
    cache = LRUCache(10)
    cache.put("huge", "x", charge=100)
    assert cache.get("huge") is None
    assert cache.used_bytes == 0


def test_replace_updates_charge():
    cache = LRUCache(100)
    cache.put("k", "v1", charge=40)
    cache.put("k", "v2", charge=20)
    assert cache.used_bytes == 20
    assert cache.get("k") == "v2"


def test_evict_prefix_drops_matching_tuple_keys():
    cache = LRUCache(100)
    cache.put((1, 0), "a", charge=10)
    cache.put((1, 4096), "b", charge=10)
    cache.put((2, 0), "c", charge=10)
    cache.evict_prefix((1,))
    assert cache.get((1, 0)) is None
    assert cache.get((1, 4096)) is None
    assert cache.get((2, 0)) == "c"


def test_clear_resets():
    cache = LRUCache(100)
    cache.put("k", "v", charge=10)
    cache.clear()
    assert len(cache) == 0
    assert cache.used_bytes == 0


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        LRUCache(0)


def test_hit_rate():
    cache = LRUCache(100)
    cache.put("k", "v", charge=1)
    cache.get("k")
    cache.get("nope")
    assert cache.stats.hit_rate == pytest.approx(0.5)
