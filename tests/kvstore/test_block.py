"""Unit and property tests for data blocks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.kvstore.block import Block, BlockBuilder
from repro.kvstore.record import InternalRecord, MAX_SEQUENCE, ValueType


def build_block(records):
    builder = BlockBuilder()
    for record in records:
        builder.add(record)
    return Block.decode(builder.finish())


def test_roundtrip_preserves_records():
    records = [
        InternalRecord(b"apple", 3, ValueType.VALUE, b"red"),
        InternalRecord(b"apricot", 2, ValueType.VALUE, b"orange"),
        InternalRecord(b"banana", 1, ValueType.DELETION, b""),
    ]
    block = build_block(records)
    assert list(block) == records


def test_prefix_compression_shrinks_shared_keys():
    shared = [InternalRecord(b"prefix/long/key/%03d" % i, i + 1, ValueType.VALUE, b"v") for i in range(50)]
    builder = BlockBuilder()
    for record in sorted(shared, key=lambda r: r.sort_key()):
        builder.add(record)
    compressed_size = len(builder.finish())
    raw_size = sum(len(r.user_key) + len(r.value) + 9 for r in shared)
    assert compressed_size < raw_size


def test_get_finds_newest_visible():
    records = [
        InternalRecord(b"k", 5, ValueType.VALUE, b"v5"),
        InternalRecord(b"k", 2, ValueType.VALUE, b"v2"),
    ]
    block = build_block(records)
    assert block.get(b"k", MAX_SEQUENCE).value == b"v5"
    assert block.get(b"k", 3).value == b"v2"
    assert block.get(b"k", 1) is None
    assert block.get(b"missing", MAX_SEQUENCE) is None


def test_seek_returns_position():
    records = [
        InternalRecord(b"a", 1, ValueType.VALUE, b""),
        InternalRecord(b"c", 2, ValueType.VALUE, b""),
    ]
    block = build_block(records)
    assert block.seek(b"b", MAX_SEQUENCE) == 1
    assert list(block.records_from(1))[0].user_key == b"c"


def test_crc_detects_corruption():
    builder = BlockBuilder()
    builder.add(InternalRecord(b"key", 1, ValueType.VALUE, b"value"))
    data = bytearray(builder.finish())
    data[2] ^= 0xFF
    with pytest.raises(CorruptionError):
        Block.decode(bytes(data))


def test_too_short_block_rejected():
    with pytest.raises(CorruptionError):
        Block.decode(b"tiny")


def test_builder_reset_allows_reuse():
    builder = BlockBuilder()
    builder.add(InternalRecord(b"a", 1, ValueType.VALUE, b"1"))
    builder.finish()
    builder.reset()
    builder.add(InternalRecord(b"b", 2, ValueType.VALUE, b"2"))
    block = Block.decode(builder.finish())
    assert [r.user_key for r in block] == [b"b"]


def test_restart_points_every_interval():
    builder = BlockBuilder(restart_interval=4)
    records = [InternalRecord(b"key%02d" % i, i + 1, ValueType.VALUE, b"") for i in range(10)]
    for record in records:
        builder.add(record)
    block = Block.decode(builder.finish())
    assert list(block) == records


_record_lists = st.lists(
    st.tuples(st.binary(min_size=1, max_size=12), st.binary(max_size=32)),
    min_size=1,
    max_size=100,
    unique_by=lambda t: t[0],
)


@given(_record_lists)
def test_roundtrip_property(pairs):
    records = sorted(
        (
            InternalRecord(key, seq + 1, ValueType.VALUE, value)
            for seq, (key, value) in enumerate(pairs)
        ),
        key=lambda r: r.sort_key(),
    )
    block = build_block(records)
    assert list(block) == records
    for record in records:
        found = block.get(record.user_key, MAX_SEQUENCE)
        assert found is not None and found.value == record.value
