"""Unit and property tests for the skiplist memtable."""

from hypothesis import given
from hypothesis import strategies as st

from repro.kvstore.memtable import MemTable
from repro.kvstore.record import MAX_SEQUENCE, ValueType


def test_get_returns_latest_version():
    mem = MemTable()
    mem.add(1, ValueType.VALUE, b"k", b"v1")
    mem.add(2, ValueType.VALUE, b"k", b"v2")
    record = mem.get(b"k", MAX_SEQUENCE)
    assert record is not None and record.value == b"v2"


def test_get_respects_snapshot_sequence():
    mem = MemTable()
    mem.add(1, ValueType.VALUE, b"k", b"v1")
    mem.add(5, ValueType.VALUE, b"k", b"v5")
    record = mem.get(b"k", 3)
    assert record is not None and record.value == b"v1"


def test_get_before_first_version_is_none():
    mem = MemTable()
    mem.add(10, ValueType.VALUE, b"k", b"v")
    assert mem.get(b"k", 5) is None


def test_get_missing_key_is_none():
    mem = MemTable()
    mem.add(1, ValueType.VALUE, b"a", b"v")
    assert mem.get(b"b", MAX_SEQUENCE) is None


def test_tombstone_returned_as_deletion():
    mem = MemTable()
    mem.add(1, ValueType.VALUE, b"k", b"v")
    mem.add(2, ValueType.DELETION, b"k")
    record = mem.get(b"k", MAX_SEQUENCE)
    assert record is not None and record.is_deletion


def test_iteration_is_sorted_newest_first_per_key():
    mem = MemTable()
    mem.add(1, ValueType.VALUE, b"b", b"b1")
    mem.add(2, ValueType.VALUE, b"a", b"a2")
    mem.add(3, ValueType.VALUE, b"b", b"b3")
    records = list(mem)
    assert [(r.user_key, r.sequence) for r in records] == [
        (b"a", 2),
        (b"b", 3),
        (b"b", 1),
    ]


def test_iterate_from_seeks_correctly():
    mem = MemTable()
    for i, key in enumerate([b"a", b"c", b"e"], start=1):
        mem.add(i, ValueType.VALUE, key, b"v")
    keys = [r.user_key for r in mem.iterate_from(b"b", MAX_SEQUENCE)]
    assert keys == [b"c", b"e"]


def test_len_and_size_grow():
    mem = MemTable()
    assert len(mem) == 0
    mem.add(1, ValueType.VALUE, b"key", b"value")
    assert len(mem) == 1
    assert mem.approximate_size > 0


@given(
    st.lists(
        st.tuples(st.binary(min_size=1, max_size=8), st.binary(max_size=16)),
        max_size=200,
    )
)
def test_matches_model_dict(ops):
    """Inserting versions in order and reading at head matches a dict."""
    mem = MemTable()
    model = {}
    for sequence, (key, value) in enumerate(ops, start=1):
        mem.add(sequence, ValueType.VALUE, key, value)
        model[key] = value
    for key, expected in model.items():
        record = mem.get(key, MAX_SEQUENCE)
        assert record is not None and record.value == expected


@given(st.lists(st.binary(min_size=1, max_size=8), min_size=1, max_size=100))
def test_iteration_sorted_property(keys):
    mem = MemTable()
    for sequence, key in enumerate(keys, start=1):
        mem.add(sequence, ValueType.VALUE, key, b"")
    sort_keys = [r.sort_key() for r in mem]
    assert sort_keys == sorted(sort_keys)
