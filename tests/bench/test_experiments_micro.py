"""Micro-scale smoke runs of every experiment definition.

The real claims are asserted in ``benchmarks/``; here each experiment
just has to run end to end at a tiny scale and produce its rows/text.
"""

import pytest

from repro.bench.calibration import preset
from repro.bench.experiments import (
    abl_coldstart,
    abl_failover,
    abl_migration,
    fig1,
    fig2,
    run_matrix,
    table1,
)

MICRO = preset(
    "quick", num_accounts=40, num_clients=4, duration_ms=60.0, warmup_ms=10.0, avg_follows=3
)


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(MICRO)


def test_fig1_structure(matrix):
    result = fig1(MICRO, matrix=matrix)
    assert [row["workload"] for row in result["rows"]] == [
        "Post",
        "GetTimeline",
        "Follow",
    ]
    for row in result["rows"]:
        assert row["aggregated_jobs_per_sec"] > 0
        assert row["disaggregated_jobs_per_sec"] > 0
    assert "Figure 1" in result["text"]


def test_fig2_structure(matrix):
    result = fig2(MICRO, matrix=matrix)
    for row in result["rows"]:
        assert row["aggregated_p99_ms"] >= row["aggregated_median_ms"]
    assert "Figure 2" in result["text"]


def test_table1_structure(matrix):
    result = table1(MICRO, matrix=matrix)
    assert len(result["rows"]) == 6
    assert "Latency" in result["evidence"]
    assert "measured" in result["evidence"]["Latency"]


def test_abl_coldstart_rows():
    result = abl_coldstart(MICRO)
    configs = [row["config"] for row in result["rows"]]
    assert "aggregated (no container)" in configs


def test_abl_migration_rows():
    result = abl_migration(MICRO)
    row = result["rows"][0]
    assert row["completions_before"] > 0
    assert row["completions_after"] > 0


def test_abl_failover_rows():
    result = abl_failover(MICRO)
    row = result["rows"][0]
    assert row["lost_writes"] is False


def test_cli_entry_point():
    from repro.bench.__main__ import main

    assert main(["abl_migration", "--preset", "quick"]) == 0
