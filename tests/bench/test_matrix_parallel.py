"""Determinism golden tests for the (workload x variant) matrix.

Two contracts: same seed => identical rows across runs, and worker-process
execution (``jobs > 1``) => identical rows to the sequential path.  Both
are what lets ``--jobs N`` exist without a tolerance band.
"""

import json

import pytest

from repro.bench.calibration import preset
from repro.bench.experiments import fig1, fig2, run_matrix

MICRO = preset(
    "quick", num_accounts=40, num_clients=4, duration_ms=60.0, warmup_ms=10.0, avg_follows=3
)


def _rows(matrix) -> str:
    return json.dumps(
        {
            "fig1": fig1(MICRO, matrix=matrix)["rows"],
            "fig2": fig2(MICRO, matrix=matrix)["rows"],
        },
        sort_keys=True,
    )


@pytest.fixture(scope="module")
def sequential():
    return run_matrix(MICRO)


def test_same_seed_runs_are_identical(sequential):
    again = run_matrix(MICRO)
    assert _rows(sequential) == _rows(again)


def test_parallel_matrix_matches_sequential(sequential):
    parallel = run_matrix(MICRO, jobs=2)
    assert list(parallel) == list(sequential)  # same cell order
    assert _rows(sequential) == _rows(parallel)


def test_parallel_cells_drop_the_platform(sequential):
    parallel = run_matrix(MICRO, jobs=2)
    for cell, result in parallel.items():
        assert result.platform is None
        assert result.report.completed == sequential[cell].report.completed
