"""simperf microbenchmark: row structure, artifact, and the CI guard."""

import json

import pytest

from repro.bench import simperf as sp


def test_event_lane_row_counts_events():
    row = sp._bench_event_lane(200)
    assert row["bench"] == "event_lane"
    assert row["events"] > 400  # two puts/gets per iteration, at least
    assert row["events_per_sec"] > 0


def test_timers_row_counts_events():
    row = sp._bench_timers(chains=5, steps=5)
    assert row["bench"] == "timers"
    assert row["events"] >= 25


def test_network_row_reports_messages():
    row = sp._bench_network(pairs=2, messages=20)
    assert row["bench"] == "network"
    assert row["messages"] == 40
    assert row["messages_per_sec"] > 0


def test_simperf_writes_artifact(tmp_path, monkeypatch):
    # Stub the macro row: the full retwis run is seconds of wall clock and
    # is exercised by the bench CLI; here we pin the payload shape.
    monkeypatch.setitem(
        sp._SIZES, "quick", {"ping_iters": 100, "chains": 3, "steps": 3, "pairs": 2, "messages": 5}
    )
    def fake_retwis(cal, bench="retwis_invoke"):
        per_invocation = 4.0 if cal.group_commit else 8.0
        return {
            "bench": bench,
            "events": 1000,
            "wall_s": 0.1,
            "events_per_sec": 10_000.0,
            "invocations": 50,
            "invocations_per_sec": 500.0,
            "messages": 200,
            "messages_per_sec": 2_000.0,
            "messages_per_invocation": per_invocation,
        }

    monkeypatch.setattr(sp, "_bench_retwis", fake_retwis)
    out = tmp_path / "BENCH_simperf.json"
    result = sp.simperf(out_path=str(out))
    assert [row["bench"] for row in result["rows"]] == [
        "event_lane",
        "timers",
        "network",
        "retwis_invoke",
        "retwis_invoke_nogc",
    ]
    assert result["headline"]["events_per_sec"] == 10_000.0
    assert result["headline"]["messages_per_invocation"] == 4.0
    assert "50.0% fewer" in result["text"]
    payload = json.loads(out.read_text())
    assert payload["schema"] == 2
    assert payload["headline"] == result["headline"]


def _result(events_per_sec: float) -> dict:
    return {"headline": {"events_per_sec": events_per_sec}}


def _baseline(tmp_path, events_per_sec: float) -> str:
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"headline": {"events_per_sec": events_per_sec}}))
    return str(path)


def test_guard_passes_within_tolerance(tmp_path):
    ok, message = sp.check_guard(_result(80_000), _baseline(tmp_path, 100_000))
    assert ok
    assert "ok" in message


def test_guard_fails_below_tolerance(tmp_path):
    ok, message = sp.check_guard(_result(50_000), _baseline(tmp_path, 100_000))
    assert not ok
    assert "FAILED" in message


def test_guard_skipped_without_baseline(tmp_path):
    ok, message = sp.check_guard(_result(1.0), str(tmp_path / "missing.json"))
    assert ok
    assert "no baseline" in message


def test_guard_skipped_via_env(tmp_path, monkeypatch):
    monkeypatch.setenv(sp.GUARD_SKIP_ENV, "1")
    ok, message = sp.check_guard(_result(1.0), _baseline(tmp_path, 100_000))
    assert ok
    assert "skipped" in message


def test_simperf_registered_as_experiment():
    from repro.bench.experiments import ALL_EXPERIMENTS

    assert ALL_EXPERIMENTS["simperf"] is sp.simperf
