"""simperf microbenchmark: row structure, artifact, and the CI guard."""

import json

import pytest

from repro.bench import simperf as sp


def test_event_lane_row_counts_events():
    row = sp._bench_event_lane(200)
    assert row["bench"] == "event_lane"
    assert row["events"] > 400  # two puts/gets per iteration, at least
    assert row["events_per_sec"] > 0


def test_timers_row_counts_events():
    row = sp._bench_timers(chains=5, steps=5)
    assert row["bench"] == "timers"
    assert row["events"] >= 25


def test_network_row_reports_messages():
    row = sp._bench_network(pairs=2, messages=20)
    assert row["bench"] == "network"
    assert row["messages"] == 40
    assert row["messages_per_sec"] > 0


def _fake_retwis(cal, bench="retwis_invoke", trace_sample_rate=None):
    if not cal.group_commit:
        per_invocation = 8.0
    elif cal.transport_coalescing:
        per_invocation = 2.0
    else:
        per_invocation = 4.0
    row = {
        "bench": bench,
        "events": 1000,
        "wall_s": 0.1,
        "events_per_sec": 10_000.0,
        "invocations": 50,
        "invocations_per_sec": 500.0,
        "messages": 200,
        "messages_per_sec": 2_000.0,
        "messages_per_invocation": per_invocation,
    }
    if trace_sample_rate is not None:
        row["trace_sample_rate"] = trace_sample_rate
        row["spans_recorded"] = 10 if trace_sample_rate < 1.0 else 100
    return row


def _tiny_sizes(monkeypatch):
    monkeypatch.setitem(
        sp._SIZES, "quick", {"ping_iters": 100, "chains": 3, "steps": 3, "pairs": 2, "messages": 5}
    )


def test_simperf_writes_artifact(tmp_path, monkeypatch):
    # Stub the macro rows: the full retwis runs are seconds of wall clock
    # and are exercised by the bench CLI; here we pin the payload shape.
    _tiny_sizes(monkeypatch)
    monkeypatch.setattr(sp, "_bench_retwis", _fake_retwis)
    out = tmp_path / "BENCH_simperf.json"
    result = sp.simperf(out_path=str(out))
    assert [row["bench"] for row in result["rows"]] == [
        "event_lane",
        "timers",
        "network",
        "retwis_invoke",
        "retwis_invoke_nogc",
        "retwis_invoke_coalesced",
        "retwis_invoke_traced",
        "retwis_invoke_sampled",
    ]
    assert result["headline"]["events_per_sec"] == 10_000.0
    assert result["headline"]["messages_per_invocation"] == 4.0
    assert "50.0% fewer" in result["text"]
    assert "coalescing: 2.00 messages/invocation vs 4.00 without" in result["text"]
    assert "tracing A/B" in result["text"]
    payload = json.loads(out.read_text())
    assert payload["schema"] == 4
    assert payload["headline"] == result["headline"]
    by_bench = {row["bench"]: row for row in payload["rows"]}
    assert by_bench["retwis_invoke_sampled"]["trace_sample_rate"] == 0.1
    assert by_bench["retwis_invoke_traced"]["trace_sample_rate"] == 1.0


def test_simperf_profile_writes_report(tmp_path, monkeypatch):
    _tiny_sizes(monkeypatch)
    monkeypatch.setattr(sp, "_bench_retwis", _fake_retwis)
    out = tmp_path / "BENCH_simperf.json"
    result = sp.simperf(out_path=str(out), profile=True)
    report = tmp_path / "BENCH_simperf_profile.txt"
    assert report.exists()
    text = report.read_text()
    # One section per row, sorted by cumulative time, truncated to 25.
    for bench in ("event_lane", "timers", "network", "retwis_invoke_sampled"):
        assert f"=== {bench} " in text
    assert "cumulative" in text
    assert str(report) in result["text"]


def _result(events_per_sec: float, rows=()) -> dict:
    return {"headline": {"events_per_sec": events_per_sec}, "rows": list(rows)}


def _baseline(tmp_path, events_per_sec: float, rows=()) -> str:
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {"headline": {"events_per_sec": events_per_sec}, "rows": list(rows)}
        )
    )
    return str(path)


def test_guard_passes_within_tolerance(tmp_path):
    ok, message = sp.check_guard(_result(80_000), _baseline(tmp_path, 100_000))
    assert ok
    assert "ok" in message


def test_guard_fails_below_tolerance(tmp_path):
    ok, message = sp.check_guard(_result(50_000), _baseline(tmp_path, 100_000))
    assert not ok
    assert "FAILED" in message


def test_guard_checks_every_row(tmp_path):
    # A regression in one micro row fails the guard even when the headline
    # (and every other row) improved.
    rows = [
        {"bench": "event_lane", "events_per_sec": 50_000.0},
        {"bench": "timers", "events_per_sec": 200_000.0},
    ]
    baseline_rows = [
        {"bench": "event_lane", "events_per_sec": 100_000.0},
        {"bench": "timers", "events_per_sec": 100_000.0},
    ]
    ok, message = sp.check_guard(
        _result(120_000, rows), _baseline(tmp_path, 100_000, baseline_rows)
    )
    assert not ok
    assert "event_lane" in message
    assert "timers" not in message


def test_guard_ignores_rows_missing_from_baseline(tmp_path):
    # Schema growth: new rows without a baseline counterpart are skipped.
    rows = [{"bench": "retwis_invoke_sampled", "events_per_sec": 1.0}]
    ok, message = sp.check_guard(
        _result(100_000, rows), _baseline(tmp_path, 100_000)
    )
    assert ok
    assert "1 rows" not in message  # zero rows checked, headline only


def test_guard_skipped_without_baseline(tmp_path):
    ok, message = sp.check_guard(_result(1.0), str(tmp_path / "missing.json"))
    assert ok
    assert "no baseline" in message


def test_guard_skipped_via_env(tmp_path, monkeypatch):
    monkeypatch.setenv(sp.GUARD_SKIP_ENV, "1")
    ok, message = sp.check_guard(_result(1.0), _baseline(tmp_path, 100_000))
    assert ok
    assert "skipped" in message


def test_simperf_registered_as_experiment():
    from repro.bench.experiments import ALL_EXPERIMENTS

    assert ALL_EXPERIMENTS["simperf"] is sp.simperf
