"""Tests for calibration, report rendering, and the harness plumbing.

Full experiment regeneration is exercised by ``benchmarks/``; these tests
cover the harness at micro scale so plumbing bugs surface in the unit
suite.
"""

import pytest

from repro.bench.calibration import Calibration, PAPER_FIG1, PAPER_TABLE1, preset
from repro.bench.harness import (
    AGGREGATED,
    DISAGGREGATED,
    build_platform,
    load_dataset,
    run_retwis,
)
from repro.bench.report import format_bars, format_comparison, format_table
from repro.sim import Simulation
from repro.workload.retwis_load import RetwisWorkload

MICRO = preset(
    "quick", num_accounts=40, num_clients=4, duration_ms=60.0, warmup_ms=10.0, avg_follows=3
)


# -- calibration ------------------------------------------------------------


def test_presets_exist():
    assert preset("quick").num_accounts < preset("full").num_accounts
    assert preset("full").num_accounts == 10_000
    assert preset("full").num_clients == 100


def test_preset_overrides():
    cal = preset("quick", num_clients=7)
    assert cal.num_clients == 7
    assert isinstance(cal, Calibration)


def test_unknown_preset_rejected():
    with pytest.raises(ValueError):
        preset("nope")


def test_paper_reference_values_present():
    assert PAPER_FIG1["Post"]["aggregated"] == 1309
    assert len(PAPER_TABLE1) == 6


# -- report rendering -------------------------------------------------------


def test_format_table_alignment():
    text = format_table(["a", "long_header"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "long_header" in lines[0]


def test_format_bars_normalises():
    text = format_bars("title", {"x": 100.0, "y": 50.0})
    lines = text.splitlines()
    assert lines[0] == "title"
    assert lines[1].count("#") == 2 * lines[2].count("#")


def test_format_bars_empty():
    assert "(no data)" in format_bars("t", {})


def test_format_comparison_includes_paper_values():
    rows = [{"workload": "Post", "x": 1}]
    text = format_comparison("exp", rows, {"Post": {"aggregated": 9}})
    assert "Paper-reported" in text
    assert "aggregated=9" in text


# -- harness ------------------------------------------------------------


def test_build_platform_variants():
    sim = Simulation(seed=0)
    cluster = build_platform(AGGREGATED, sim, MICRO)
    assert len(cluster.nodes) == MICRO.num_storage_nodes
    sim2 = Simulation(seed=0)
    baseline = build_platform(DISAGGREGATED, sim2, MICRO)
    assert len(baseline.storage_nodes) == MICRO.num_storage_nodes
    with pytest.raises(ValueError):
        build_platform("nope", sim, MICRO)


def test_load_dataset_scales_with_calibration():
    sim = Simulation(seed=0)
    platform = build_platform(AGGREGATED, sim, MICRO)
    dataset = load_dataset(platform, MICRO)
    assert len(dataset.accounts) == MICRO.num_accounts


@pytest.mark.parametrize("variant", [AGGREGATED, DISAGGREGATED])
def test_run_retwis_micro(variant):
    result = run_retwis(variant, RetwisWorkload.GET_TIMELINE, MICRO)
    assert result.report.completed > 0
    assert result.throughput > 0
    assert result.median_ms > 0
    assert result.p99_ms >= result.median_ms


def test_run_retwis_deterministic():
    first = run_retwis(AGGREGATED, RetwisWorkload.FOLLOW, MICRO)
    second = run_retwis(AGGREGATED, RetwisWorkload.FOLLOW, MICRO)
    assert first.report.completed == second.report.completed
    assert first.median_ms == second.median_ms
