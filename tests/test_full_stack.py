"""Full-stack correctness: the cluster must compute exactly what a
sequential oracle computes.

A deterministic script of ReTwis operations runs through the complete
distributed machinery (clients, network, locks, sandbox, replication);
the same script replays on the embedded LocalRuntime.  Every observable
result — timelines, profiles — must match, which pins down the whole
stack end to end (the distributed system is "just" a faster LocalRuntime
with failures).
"""

import pytest

from repro.apps.retwis import user_type
from repro.cluster import Cluster, ClusterConfig
from repro.core import LocalRuntime, ObjectId
from repro.sim import Simulation


def make_script(num_users=8, rounds=3):
    """A deterministic operation script over named users."""
    users = [ObjectId.from_name(f"stack-user-{i}") for i in range(num_users)]
    script = []
    for i, user in enumerate(users):
        script.append((user, "follow", (users[(i + 1) % num_users],)))
        if i % 2 == 0:
            script.append((user, "follow", (users[(i + 3) % num_users],)))
    for round_number in range(rounds):
        for i, user in enumerate(users):
            if (i + round_number) % 3 == 0:
                script.append((user, "create_post", (f"r{round_number} by {i}",)))
        script.append((users[round_number % num_users], "block", (users[(round_number + 1) % num_users],)))
    return users, script


def observe(invoke, users):
    """Everything we compare between the two executions."""
    state = {}
    for index, user in enumerate(users):
        timeline = invoke(user, "get_timeline", 50)
        state[index] = {
            "texts": [post["text"] for post in timeline],
            "profile": invoke(user, "get_profile"),
        }
    return state


def run_on_cluster(users, script):
    sim = Simulation(seed=5)
    cluster = Cluster(sim, ClusterConfig(seed=5))
    cluster.register_type(user_type())
    cluster.start()
    for index, user in enumerate(users):
        cluster.create_object("User", object_id=user, initial={"name": f"u{index}"})
    client = cluster.client("script")
    for user, method_name, args in script:
        cluster.run_invoke(client, user, method_name, *args)
    return observe(lambda oid, m, *a: cluster.run_invoke(client, oid, m, *a), users)


def run_on_oracle(users, script):
    runtime = LocalRuntime(seed=5)
    runtime.register_type(user_type())
    for index, user in enumerate(users):
        runtime.create_object("User", object_id=user, initial={"name": f"u{index}"})
    for user, method_name, args in script:
        runtime.invoke(user, method_name, *args)
    return observe(runtime.invoke, users)


def test_cluster_matches_sequential_oracle():
    users, script = make_script()
    cluster_state = run_on_cluster(users, script)
    oracle_state = run_on_oracle(users, script)
    for index in cluster_state:
        assert cluster_state[index]["texts"] == oracle_state[index]["texts"], index
        assert (
            cluster_state[index]["profile"] == oracle_state[index]["profile"]
        ), index


def test_cluster_matches_oracle_with_sharding():
    users, script = make_script(num_users=6, rounds=2)
    sim = Simulation(seed=9)
    cluster = Cluster(sim, ClusterConfig(seed=9, num_storage_nodes=4, num_shards=2))
    cluster.register_type(user_type())
    cluster.start()
    for index, user in enumerate(users):
        cluster.create_object("User", object_id=user, initial={"name": f"u{index}"})
    client = cluster.client("script")
    for user, method_name, args in script:
        cluster.run_invoke(client, user, method_name, *args)
    sharded_state = observe(
        lambda oid, m, *a: cluster.run_invoke(client, oid, m, *a), users
    )
    oracle_state = run_on_oracle(users, script)
    assert sharded_state == oracle_state
