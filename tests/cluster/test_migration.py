"""Live microshard migration tests."""

import pytest

from repro.cluster.migration import Migrator
from repro.core import ObjectId, keyspace

from tests.cluster.conftest import build_cluster, run_ops


def sharded_cluster(seed=21):
    sim, cluster = build_cluster(seed=seed, num_storage_nodes=4, num_shards=2)
    return sim, cluster


def other_shard(cluster, oid):
    home = cluster.bootstrap_shard_map.shard_for(oid).shard_id
    return (home + 1) % 2


def test_migrate_moves_data_and_ownership():
    sim, cluster = sharded_cluster()
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 5)
    target = other_shard(cluster, oid)

    migrator = Migrator(cluster)
    process = sim.process(migrator.migrate(oid, target))
    sim.run_until_triggered(process, limit=sim.now + 10_000)

    epoch, shard_map = cluster.current_config()
    assert shard_map.shard_for(oid).shard_id == target
    # Data is present at the destination primary.
    dest_primary = cluster.node(shard_map.shard_for(oid).primary)
    key = keyspace.value_key(oid, "count")
    assert dest_primary.runtime.storage.get(key) is not None


def test_invocations_work_after_migration():
    sim, cluster = sharded_cluster(seed=22)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 3)
    target = other_shard(cluster, oid)

    migrator = Migrator(cluster)
    process = sim.process(migrator.migrate(oid, target))
    sim.run_until_triggered(process, limit=sim.now + 10_000)

    # The client still holds the old config; retries route it correctly.
    assert cluster.run_invoke(client, oid, "increment", 1) == 4
    assert cluster.run_invoke(client, oid, "read") == 4


def test_source_drops_object_after_migration():
    sim, cluster = sharded_cluster(seed=23)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 1)
    source_primary = cluster.bootstrap_shard_map.shard_for(oid).primary
    target = other_shard(cluster, oid)

    migrator = Migrator(cluster)
    process = sim.process(migrator.migrate(oid, target))
    sim.run_until_triggered(process, limit=sim.now + 10_000)
    sim.run(until=sim.now + 20)  # let the drop + its replication settle

    key = keyspace.meta_key(oid)
    assert cluster.node(source_primary).runtime.storage.get(key) is None


def test_other_objects_undisturbed_during_migration():
    sim, cluster = sharded_cluster(seed=24)
    moving = cluster.create_object("Counter")
    steady = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, moving, "increment", 1)
    cluster.run_invoke(client, steady, "increment", 1)

    migrator = Migrator(cluster)
    other_clients = [cluster.client(f"s{i}") for i in range(4)]
    migration = sim.process(migrator.migrate(moving, other_shard(cluster, moving)))
    results = run_ops(
        sim, cluster, [(c, steady, "increment", (1,)) for c in other_clients]
    )
    assert sorted(results) == [2, 3, 4, 5]
    sim.run_until_triggered(migration, limit=sim.now + 10_000)


def test_writes_during_migration_retry_and_land():
    sim, cluster = sharded_cluster(seed=25)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 1)

    migrator = Migrator(cluster)
    migration = sim.process(migrator.migrate(oid, other_shard(cluster, oid)))
    # Issue a write concurrently with the migration window.
    write = sim.process(client.invoke(oid, "increment", 1))
    gate = sim.all_of([migration, write])
    sim.run_until_triggered(gate, limit=sim.now + 20_000)
    assert cluster.run_invoke(client, oid, "read") == 2


def test_migrate_to_same_shard_is_noop():
    sim, cluster = sharded_cluster(seed=26)
    oid = cluster.create_object("Counter")
    home = cluster.bootstrap_shard_map.shard_for(oid).shard_id
    migrator = Migrator(cluster)
    process = sim.process(migrator.migrate(oid, home))
    sim.run_until_triggered(process, limit=sim.now + 1_000)
    epoch, _ = cluster.current_config()
    assert epoch == 1  # no reconfiguration happened
