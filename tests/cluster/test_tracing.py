"""Tests for the message tracer."""

from repro.cluster.tracing import MessageTracer

from tests.cluster.conftest import build_cluster


def traced_cluster(seed=91):
    sim, cluster = build_cluster(seed=seed)
    tracer = MessageTracer(cluster.net)
    return sim, cluster, tracer


def test_records_request_path():
    sim, cluster, tracer = traced_cluster()
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 1)
    path = tracer.request_path("c0#1")
    kinds = [entry.kind for entry in path]
    assert "ClientRequest" in kinds
    assert "ClientReply" in kinds
    # The request went client -> primary, the reply came back.
    assert path[0].src == "c0"
    assert any(entry.dst == "c0" for entry in path)


def test_by_kind_counts_replication():
    # Group commit ships range frames; one per backup for a lone commit.
    sim, cluster, tracer = traced_cluster(seed=92)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 1)
    sim.run(until=sim.now + 5)
    counts = tracer.by_kind()
    assert counts["ReplicateWritesRange"] == 2  # two backups
    assert counts["ReplicateAck"] >= 2


def test_by_kind_counts_replication_legacy_path():
    sim, cluster = build_cluster(seed=92, group_commit=False)
    tracer = MessageTracer(cluster.net)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 1)
    sim.run(until=sim.now + 5)
    counts = tracer.by_kind()
    assert counts["ReplicateWrites"] == 2  # one frame per backup per round
    assert counts["ReplicateAck"] >= 2


def test_between_filters_links():
    sim, cluster, tracer = traced_cluster(seed=93)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 1)
    link = tracer.between("c0", "store-0")
    assert all(e.src == "c0" and e.dst == "store-0" for e in link)
    assert link


def test_bytes_by_link_positive():
    sim, cluster, tracer = traced_cluster(seed=94)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 1)
    totals = tracer.bytes_by_link()
    assert totals and all(v > 0 for v in totals.values())


def test_render_and_limit():
    sim, cluster, tracer = traced_cluster(seed=95)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 1)
    text = tracer.render(limit=3)
    assert "ClientRequest" in text or "more" in text


def test_ring_buffer_bounds_memory():
    sim, cluster, tracer = traced_cluster(seed=96)
    tracer._max = 10
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    for _ in range(5):
        cluster.run_invoke(client, oid, "increment", 1)
    assert len(tracer) <= 10
    assert tracer.dropped_oldest > 0


def test_detach_stops_recording():
    sim, cluster, tracer = traced_cluster(seed=97)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 1)
    before = len(tracer)
    tracer.detach()
    cluster.run_invoke(client, oid, "increment", 1)
    assert len(tracer) == before


def test_detach_restores_previous_tap():
    sim, cluster, first = traced_cluster(seed=98)
    second = MessageTracer(cluster.net)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 1)
    # Both stacked tracers see traffic; detaching the top restores the first.
    assert len(first) > 0 and len(second) > 0
    second.detach()
    assert cluster.net.tap == first._on_message
    before_first, before_second = len(first), len(second)
    cluster.run_invoke(client, oid, "increment", 1)
    assert len(second) == before_second
    assert len(first) > before_first


def test_detach_out_of_order_keeps_outer_tracer_live():
    # Nemesis-style stacking: detach the *bottom* tracer while another is
    # still attached on top.  The detached one must stop recording, the
    # outer one must keep seeing every message.
    sim, cluster, inner = traced_cluster(seed=99)
    outer = MessageTracer(cluster.net)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    inner.detach()
    cluster.run_invoke(client, oid, "increment", 1)
    assert len(inner) == 0
    assert len(outer) > 0
    outer.detach()
    assert cluster.net.tap is None


def test_tracer_is_a_context_manager():
    sim, cluster = build_cluster(seed=100)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    with MessageTracer(cluster.net) as tracer:
        cluster.run_invoke(client, oid, "increment", 1)
        assert len(tracer) > 0
    before = len(tracer)
    cluster.run_invoke(client, oid, "increment", 1)
    assert len(tracer) == before
    assert cluster.net.tap is None


def test_detach_is_idempotent():
    sim, cluster, tracer = traced_cluster(seed=101)
    tracer.detach()
    tracer.detach()
    assert cluster.net.tap is None
