"""Focused StoreNode behaviours: at-most-once, epochs, frozen objects."""

from repro.cluster.messages import ClientReply, ClientRequest

from tests.cluster.conftest import build_cluster


def send_request(cluster, request, target="store-0"):
    cluster.net.send(request.client, target, request, size_bytes=request.size())


def drain_replies(sim, cluster, client_host, until_extra=20.0):
    sim.run(until=sim.now + until_extra)
    return [m.payload for m in client_host.inbox.drain() if isinstance(m.payload, ClientReply)]


def make_raw_client(cluster, name="raw"):
    return cluster.net.add_host(name)


def test_duplicate_request_executes_once():
    sim, cluster = build_cluster(seed=61)
    oid = cluster.create_object("Counter")
    host = make_raw_client(cluster)
    request = ClientRequest("raw#1", "raw", oid, "increment", (1,), epoch=1)
    send_request(cluster, request)
    sim.run(until=sim.now + 10)
    send_request(cluster, request)  # a retransmission of the same request
    replies = drain_replies(sim, cluster, host)
    assert len(replies) == 2
    assert all(reply.ok and reply.value == 1 for reply in replies)
    # The counter really only moved once.
    client = cluster.client("checker")
    assert cluster.run_invoke(client, oid, "read") == 1


def test_stale_epoch_rejected_with_current_epoch():
    sim, cluster = build_cluster(seed=62)
    oid = cluster.create_object("Counter")
    host = make_raw_client(cluster)
    request = ClientRequest("raw#1", "raw", oid, "increment", (1,), epoch=0)
    send_request(cluster, request)
    replies = drain_replies(sim, cluster, host)
    assert len(replies) == 1
    assert not replies[0].ok
    assert replies[0].error == "wrong epoch"
    assert replies[0].current_epoch == 1


def test_non_primary_rejects_writes():
    sim, cluster = build_cluster(seed=63)
    oid = cluster.create_object("Counter")
    host = make_raw_client(cluster)
    request = ClientRequest("raw#1", "raw", oid, "increment", (1,), epoch=1)
    send_request(cluster, request, target="store-1")  # a backup
    replies = drain_replies(sim, cluster, host)
    assert len(replies) == 1
    assert replies[0].error == "not primary"


def test_backup_serves_readonly():
    sim, cluster = build_cluster(seed=64)
    oid = cluster.create_object("Counter", initial={"count": 4})
    host = make_raw_client(cluster)
    request = ClientRequest("raw#1", "raw", oid, "read", (), epoch=1, readonly_hint=True)
    send_request(cluster, request, target="store-2")
    replies = drain_replies(sim, cluster, host)
    assert replies[0].ok and replies[0].value == 4


def test_frozen_object_rejects_with_retryable_error():
    sim, cluster = build_cluster(seed=65)
    oid = cluster.create_object("Counter")
    node = cluster.node("store-0")
    node._frozen.add(str(oid))
    host = make_raw_client(cluster)
    request = ClientRequest("raw#1", "raw", oid, "increment", (1,), epoch=1)
    send_request(cluster, request)
    replies = drain_replies(sim, cluster, host)
    assert replies[0].error == "migration in progress"


def test_crashed_node_stays_silent():
    sim, cluster = build_cluster(seed=66)
    oid = cluster.create_object("Counter")
    cluster.crash_node("store-0")
    host = make_raw_client(cluster)
    request = ClientRequest("raw#1", "raw", oid, "increment", (1,), epoch=1)
    send_request(cluster, request)
    replies = drain_replies(sim, cluster, host)
    assert replies == []


def test_retry_of_inflight_request_executes_once():
    """Regression: a retransmission arriving while the original request is
    still executing must wait for it, not execute a second time (the
    retry-storm bug found at the full evaluation scale)."""
    sim, cluster = build_cluster(seed=67)
    oid = cluster.create_object("Counter")
    host = make_raw_client(cluster)
    request = ClientRequest("raw#1", "raw", oid, "increment", (1,), epoch=1)
    # Two copies in flight at once: the second arrives before the first
    # finishes its (simulated) execution + replication.
    send_request(cluster, request)
    send_request(cluster, request)
    replies = drain_replies(sim, cluster, host)
    assert len(replies) == 2
    assert all(reply.ok and reply.value == 1 for reply in replies)
    client = cluster.client("checker")
    assert cluster.run_invoke(client, oid, "read") == 1
    # Exactly one execution took the object's lock.
    assert cluster.node("store-0").locks.stats.acquisitions == 1
