"""Lease-based replica reads: serving, fencing, and refusal.

The protocol under test (see DESIGN.md §5g): backups holding a fresh
lease from their shard's primary serve read-only invocations locally,
parking each reply until the settlement watermark covers the read state;
clients carry the settled fence from every reply into later reads as
``min_applied``, so observing a settled write and then reading older
backup state is impossible; deposed or partitioned replicas refuse reads
once their lease expires instead of serving stale state.
"""

from repro.cluster.messages import ClientReply, ClientRequest
from repro.rpc import RpcStub

from tests.cluster.conftest import build_cluster


def _served(cluster) -> int:
    return sum(node.stats.replica_reads_served for node in cluster.nodes.values())


def test_replica_reads_monotonic_with_interleaved_writes():
    """A client alternating settled writes with reads must never observe
    a stale value, even though the reads are served at backups."""
    sim, cluster = build_cluster()
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")

    def loop():
        for i in range(1, 21):
            value = yield from client.invoke(oid, "increment", 1)
            assert value == i
            read = yield from client.invoke(oid, "read")
            assert read == i, (read, i)

    process = sim.process(loop())
    sim.run_until_triggered(process, limit=sim.now + 60_000)
    # The reads actually exercised the lease path, and the client
    # collected monotonic-read fences from the replies.
    assert _served(cluster) > 0
    assert client._fences
    assert max(client._fences.values()) > 0


def test_replica_reads_disabled_reads_go_to_primary():
    sim, cluster = build_cluster(replica_reads=False)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    assert not client.replica_reads
    assert cluster.run_invoke(client, oid, "increment", 1) == 1
    for _ in range(5):
        assert cluster.run_invoke(client, oid, "read") == 1
    assert _served(cluster) == 0


def test_lagging_backup_refuses_stale_read_after_reconfiguration():
    """The monotonic-read regression this PR fixes: a backup cut off
    before a settled write must refuse reads (expired lease), never
    answer with its older local state."""
    sim, cluster = build_cluster()
    oid = cluster.create_object("Counter")
    writer = cluster.client("writer")
    assert cluster.run_invoke(writer, oid, "increment", 1) == 1

    # Cut one backup off from every node and coordinator — but not from
    # clients, which keep their own (stale) routing.
    lagger = "store-2"
    others = [n for n in cluster.nodes if n != lagger] + list(cluster.coordinators)
    cluster.net.partition([lagger], others)

    # Run until failure detection removes the lagging backup, so the
    # remaining members can settle writes without it.
    deadline = sim.now + 5_000.0
    replica_set = None
    while sim.now < deadline:
        sim.run(until=sim.now + 20.0)
        _epoch, shard_map = cluster.current_config()
        replica_set = shard_map.shard_for(oid)
        if lagger not in replica_set.members:
            break
    assert replica_set is not None and lagger not in replica_set.members

    # Writes the deposed backup never sees, settled under the new config.
    assert cluster.run_invoke(writer, oid, "increment", 1) == 2
    assert cluster.run_invoke(writer, oid, "increment", 1) == 3
    assert cluster.run_invoke(writer, oid, "read") == 3
    assert writer._fences  # replies carried settled fences

    # The deposed backup still holds the old configuration and the old
    # (stale) counter state.  A read routed straight at it with the old
    # epoch must come back as a lease refusal, not a stale value.
    stub = RpcStub(
        sim, cluster.net, "probe", default_deadline_ms=500.0, discard_unmatched=True
    )
    request = ClientRequest(
        request_id="probe#1",
        client="probe",
        object_id=oid,
        method="read",
        args=(),
        epoch=cluster.nodes[lagger].epoch,
        readonly_hint=True,
        min_applied=0,
    )

    def probe():
        return (
            yield from stub.request(
                lagger,
                request,
                lambda p: isinstance(p, ClientReply) and p.request_id == "probe#1",
            )
        )

    reply = sim.run_until_triggered(sim.process(probe()), limit=sim.now + 10_000)
    assert reply is not None, "deposed backup never answered the probe"
    assert not reply.ok
    assert reply.error == "no lease"
    assert reply.server == lagger


def test_leased_backup_rejects_read_beyond_its_applied_state():
    """A backup with a valid lease but an applied watermark below the
    client's fence must park and then reject retryably, never answer
    from state older than what the client already observed."""
    sim, cluster = build_cluster()
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    assert cluster.run_invoke(client, oid, "increment", 1) == 1

    backup_name = "store-1"
    backup = cluster.nodes[backup_name]
    state = backup._replica_state_for(0, "store-0")
    state.lease_expiry = sim.now + 10_000.0  # synthetic fresh lease

    stub = RpcStub(
        sim, cluster.net, "probe", default_deadline_ms=500.0, discard_unmatched=True
    )
    request = ClientRequest(
        request_id="probe#1",
        client="probe",
        object_id=oid,
        method="read",
        args=(),
        epoch=backup.epoch,
        readonly_hint=True,
        min_applied=10_000,  # a fence far beyond anything applied
    )

    def probe():
        return (
            yield from stub.request(
                backup_name,
                request,
                lambda p: isinstance(p, ClientReply) and p.request_id == "probe#1",
            )
        )

    reply = sim.run_until_triggered(sim.process(probe()), limit=sim.now + 10_000)
    assert reply is not None
    assert not reply.ok
    assert reply.error == "replica behind"
    assert backup.stats.replica_behind_rejections >= 1
    # The park bookkeeping drained (nothing wedges quiescence).
    assert backup._parked_reads == 0


def test_client_penalizes_rejecting_backup_and_retries_elsewhere():
    """A lease rejection is retryable: the client must still complete the
    read (via the primary or another backup) and sideline the rejecting
    replica for a moment."""
    sim, cluster = build_cluster()
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    assert cluster.run_invoke(client, oid, "increment", 1) == 1

    # Cut both backups off from the primary (not from clients or
    # coordinators): leases lapse, so backup reads reject until the
    # client retries at the primary.
    cluster.net.partition(["store-0"], ["store-1", "store-2"])
    sim.run(until=sim.now + 45.0)  # past the lease horizon

    assert cluster.run_invoke(client, oid, "read") == 1
    rejections = sum(
        node.stats.lease_rejections + node.stats.replica_behind_rejections
        for node in cluster.nodes.values()
    )
    if rejections:
        assert client._penalty  # rejecting backups are sidelined
    cluster.net.heal()
