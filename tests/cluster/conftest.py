"""Shared fixtures for cluster tests."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import CollectionField, ObjectType, ValueField, method, readonly_method
from repro.sim import Simulation


def counter_type():
    def increment(self, by=1):
        self.set("count", (self.get("count") or 0) + by)
        return self.get("count")

    def read(self):
        return self.get("count") or 0

    def increment_remote(self, other_oid, by):
        self.set("count", (self.get("count") or 0) + by)
        return self.get_object(other_oid).increment(by)

    return ObjectType(
        "Counter",
        fields=[ValueField("count", default=0)],
        methods=[method(increment), readonly_method(read), method(increment_remote)],
    )


def notebook_type():
    def add(self, text):
        return self.collection("notes").push(text)

    def listing(self, limit=None):
        return [v for _k, v in self.collection("notes").items(limit=limit)]

    return ObjectType(
        "Notebook",
        fields=[CollectionField("notes")],
        methods=[method(add), readonly_method(listing)],
    )


def build_cluster(seed=1, **config_kwargs):
    sim = Simulation(seed=seed)
    cluster = Cluster(sim, ClusterConfig(seed=seed, **config_kwargs))
    cluster.register_type(counter_type())
    cluster.register_type(notebook_type())
    cluster.start()
    return sim, cluster


@pytest.fixture()
def small_cluster():
    sim, cluster = build_cluster()
    return sim, cluster


def run_ops(sim, cluster, ops, limit_ms=120_000):
    """Run client operations concurrently; returns list of results.

    ``ops`` is a list of (client, oid, method, args) tuples; each runs in
    its own simulation process starting at time ~now.
    """
    processes = []
    for client, oid, method_name, args in ops:
        processes.append(sim.process(client.invoke(oid, method_name, *args)))
    gate = sim.all_of(processes)
    values = sim.run_until_triggered(gate, limit=sim.now + limit_ms)
    return [values[p] for p in processes]
