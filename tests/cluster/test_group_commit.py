"""Unit tests for group-commit replication: cumulative acks on the
primary log and the per-shard :class:`ReplicationPipeline`."""

from repro.cluster.replication import PrimaryReplicationLog, ReplicationPipeline
from repro.sim import Simulation

from tests.cluster.conftest import build_cluster


def seeded_log(rounds=0):
    log = PrimaryReplicationLog(0)
    for _ in range(rounds):
        log.next_sequence([b"x"])
    return log


# -- cumulative acks on the log ---------------------------------------------


def test_record_ack_counts_duplicate_reacks_once():
    # Retransmission crossings re-deliver acks; the counter must only see
    # first-time (sequence, backup) pairs.
    log = seeded_log(rounds=1)
    log.record_ack(1, "b1")
    log.record_ack(1, "b1")
    log.record_ack(1, "b1")
    assert log.stats.acked == 1
    assert log.acked_by(1) == {"b1"}


def test_record_ack_is_implicitly_cumulative():
    # Backups apply strictly in order, so an ack for 3 means 1 and 2
    # landed too (their acks may have been dropped on the wire).
    log = seeded_log(rounds=3)
    log.record_ack(3, "b1")
    assert log.acked_through["b1"] == 3
    assert log.acked_by(1) == {"b1"}
    assert log.acked_by(2) == {"b1"}
    assert log.stats.acked == 3


def test_record_cumulative_ack_rejects_stale_and_duplicate():
    log = seeded_log(rounds=3)
    assert log.record_cumulative_ack("b1", 2) is True
    assert log.record_cumulative_ack("b1", 2) is False  # duplicate
    assert log.record_cumulative_ack("b1", 1) is False  # reordered/stale
    assert log.acked_through["b1"] == 2
    assert log.stats.acked == 2  # back-fill counted each sequence once


def test_complete_through_prunes_and_absorbs_individual_completions():
    log = seeded_log(rounds=4)
    log.mark_complete(3)  # a legacy round settled individually
    log.complete_through(2)
    # 1-2 settle cumulatively and re-absorb the already-complete 3.
    assert log.completed_through == 3
    assert log.retained == 1
    assert 4 in log.history and 1 not in log.history


def test_cumulative_ack_below_pruned_watermark_is_noop():
    log = seeded_log(rounds=3)
    log.record_cumulative_ack("b1", 3)
    log.complete_through(3)  # history pruned
    assert log.record_cumulative_ack("b1", 2) is False
    assert log.acked_through["b1"] == 3
    assert log.retained == 0


# -- the pipeline -----------------------------------------------------------


class Harness:
    """Pipeline + a recording transport and a mutable backup list."""

    def __init__(self, backups=("b1", "b2"), **kwargs):
        self.sim = Simulation(seed=7)
        self.log = PrimaryReplicationLog(0)
        self.backups = list(backups)
        self.frames = []  # (sim_now, targets, first_sequence, rounds)
        self.pipeline = ReplicationPipeline(
            self.sim,
            0,
            self.log,
            send_frame=self._record,
            backups_fn=lambda: list(self.backups),
            ack_timeout_ms=5.0,
            **kwargs,
        )

    def _record(self, targets, first, rounds):
        self.frames.append((self.sim.now, list(targets), first, list(rounds)))

    def ack_all(self, through):
        for backup in self.backups:
            self.pipeline.on_ack(backup, through)


def test_open_flush_ships_immediately_on_empty_pipe():
    h = Harness()
    event = h.pipeline.submit([b"round-1"])
    assert [(f[2], len(f[3])) for f in h.frames] == [(1, 1)]
    assert not event.triggered
    h.ack_all(1)
    assert event.triggered
    assert h.pipeline.idle


def test_rounds_coalesce_while_a_frame_is_in_flight():
    h = Harness()
    first = h.pipeline.submit([b"a"])
    second = h.pipeline.submit([b"b"])
    third = h.pipeline.submit([b"c"])
    # Only the open flush went out; b and c are queued behind it.
    assert len(h.frames) == 1
    h.ack_all(1)
    # The drained pipe triggers one combined frame: sequences 2..3.
    assert len(h.frames) == 2
    _now, targets, start, rounds = h.frames[1]
    assert (start, rounds) == (2, [[b"b"], [b"c"]])
    assert first.triggered and not second.triggered and not third.triggered
    h.ack_all(3)
    assert second.triggered and third.triggered


def test_size_threshold_forces_flush():
    h = Harness(max_rounds=2)
    h.pipeline.submit([b"a"])  # open flush
    h.pipeline.submit([b"b"])
    h.pipeline.submit([b"c"])  # hits max_rounds -> size flush
    assert [f[2] for f in h.frames] == [1, 2]
    assert h.pipeline.highest_flushed == 3


def test_reply_released_only_at_full_watermark():
    # One lagging backup holds every parked reply at or above its gap.
    h = Harness()
    event = h.pipeline.submit([b"a"])
    h.pipeline.on_ack("b1", 1)
    assert not event.triggered
    h.pipeline.on_ack("b2", 1)
    assert event.triggered


def test_duplicate_and_reordered_acks_do_not_regress_watermark():
    h = Harness()
    events = [h.pipeline.submit([payload]) for payload in (b"a", b"b", b"c")]
    h.ack_all(1)
    h.pipeline.flush("drain")
    h.ack_all(3)
    assert all(event.triggered for event in events)
    assert h.pipeline.settled_through == 3
    # Late, stale, and duplicate acks (retransmission crossings) are noise.
    h.pipeline.on_ack("b1", 2)
    h.pipeline.on_ack("b2", 3)
    assert h.pipeline.settled_through == 3
    assert h.pipeline.idle


def test_ack_for_pruned_sequences_is_harmless():
    h = Harness()
    h.pipeline.submit([b"a"])
    h.ack_all(1)
    assert h.log.retained == 0  # settled history pruned
    h.ack_all(1)  # re-ack after prune
    assert h.pipeline.settled_through == 1
    assert h.pipeline.idle


def test_backup_removed_mid_round_stops_gating_replies():
    h = Harness()
    event = h.pipeline.submit([b"a"])
    h.pipeline.on_ack("b1", 1)
    assert not event.triggered  # b2 still owes an ack
    h.backups.remove("b2")  # failover/migration dropped it
    h.pipeline.on_config_change()
    assert event.triggered
    assert h.pipeline.idle


def test_all_backups_removed_settles_everything():
    h = Harness()
    event = h.pipeline.submit([b"a"])
    h.backups.clear()
    h.pipeline.on_config_change()
    assert event.triggered


def test_config_change_drains_queued_rounds_to_new_membership():
    h = Harness()
    h.pipeline.submit([b"a"])
    h.pipeline.submit([b"b"])  # queued behind the in-flight frame
    h.backups.append("b3")
    h.pipeline.on_config_change()
    # The drain flush ships to the veterans; b3 gets a full-range frame
    # starting at the oldest unsettled sequence.
    assert len(h.frames) == 3
    _now, targets, start, rounds = h.frames[2]
    assert targets == ["b3"]
    assert (start, len(rounds)) == (1, 2)


def test_fresh_backup_never_sent_does_not_hold_watermark():
    h = Harness()
    event = h.pipeline.submit([b"a"])
    h.backups.append("b3")  # joined after the flush; needs state transfer
    h.pipeline.on_ack("b1", 1)
    h.pipeline.on_ack("b2", 1)
    assert event.triggered


def test_barrier_parks_until_watermark_and_passes_when_quiescent():
    h = Harness()
    assert h.pipeline.barrier().triggered  # nothing outstanding
    h.pipeline.submit([b"a"])
    barrier = h.pipeline.barrier()
    assert not barrier.triggered
    h.ack_all(1)
    assert barrier.triggered


def test_watchdog_retransmits_only_the_lagging_backup_with_backoff():
    h = Harness()
    h.pipeline.submit([b"a"])
    h.pipeline.on_ack("b1", 1)  # b2 never answers
    h.sim.run(until=100.0)
    retries = [f for f in h.frames[1:]]
    assert retries and all(f[1] == ["b2"] for f in retries)
    assert all((f[2], f[3]) == (1, [[b"a"]]) for f in retries)
    assert h.log.stats.retransmitted == len(retries)
    gaps = [b[0] - a[0] for a, b in zip(retries, retries[1:])]
    # Exponential backoff: strictly increasing gaps, capped at 8x + jitter.
    assert all(later > earlier for earlier, later in zip(gaps, gaps[1:])) or len(gaps) < 2
    assert all(gap <= 5.0 * 8 * 1.25 + 1e-9 for gap in gaps)


def test_retired_pipeline_ships_and_settles_nothing():
    # Failover deposed this primary mid-round: it must not retransmit
    # stale frames over the new primary's stream, must not drain queued
    # rounds, and must not release parked replies — even when every
    # straggler acks (or leaves the replica set) afterwards.
    h = Harness()
    event = h.pipeline.submit([b"a"])  # open flush: in flight
    queued = h.pipeline.submit([b"b"])  # queued behind it
    h.pipeline.retire()
    h.pipeline.on_config_change()  # NewConfig adoption after deposal
    h.ack_all(1)
    assert h.log.acked_through == {"b1": 1, "b2": 1}  # facts still land
    assert not event.triggered and not queued.triggered
    h.backups.clear()  # even an emptied backup set settles nothing
    h.pipeline.on_config_change()
    h.sim.run(until=300.0)  # watchdog wakes and exits; no retransmission
    assert len(h.frames) == 1
    assert h.log.stats.retransmitted == 0
    assert not event.triggered


def test_unretire_resumes_where_the_sequence_space_left_off():
    # Re-promotion: the kept queue drains to the new membership and the
    # recorded acks settle the pre-deposal rounds.
    h = Harness()
    first = h.pipeline.submit([b"a"])
    h.pipeline.retire()
    second = h.pipeline.submit([b"b"])  # queued while retired; no frame
    assert len(h.frames) == 1
    h.pipeline.unretire()
    h.pipeline.on_config_change()
    assert [f[2] for f in h.frames] == [1, 2]
    h.ack_all(2)
    assert first.triggered and second.triggered
    assert h.pipeline.idle


def test_watchdog_stops_once_settled_and_restarts_on_next_flush():
    h = Harness()
    h.pipeline.submit([b"a"])
    h.sim.run(until=7.0)  # one watchdog wake with no progress
    h.ack_all(1)
    h.sim.run(until=60.0)
    settled_frames = len(h.frames)
    h.sim.run(until=200.0)
    assert len(h.frames) == settled_frames  # no zombie watchdog traffic
    event = h.pipeline.submit([b"b"])
    h.ack_all(2)
    assert event.triggered


# -- end to end --------------------------------------------------------------


def test_failover_retires_the_deposed_primary_pipeline():
    # Crash the primary, let the coordinator promote a backup, then bring
    # the old primary back: adopting the post-failover config must retire
    # its pipeline (it no longer leads the shard), while the promoted
    # node's replication keeps serving writes.
    sim, cluster = build_cluster(seed=17)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    for expected in (1, 2, 3):
        assert cluster.run_invoke(client, oid, "increment", 1) == expected
    old_primary = cluster.nodes["store-0"]
    assert old_primary.pipelines
    assert not any(p.retired for p in old_primary.pipelines.values())
    cluster.crash_node("store-0")
    assert cluster.run_invoke(client, oid, "increment", 1) == 4
    epoch, shard_map = cluster.current_config()
    assert shard_map.replica_sets[0].primary == "store-1"
    cluster.recover_node("store-0")
    old_primary.install_config(epoch, shard_map.copy())
    assert all(p.retired for p in old_primary.pipelines.values())
    new_primary = cluster.nodes["store-1"]
    assert not any(p.retired for p in new_primary.pipelines.values())
    assert cluster.run_invoke(client, oid, "increment", 1) == 5
