"""Unit tests for the bounded at-most-once reply table."""

from repro.cluster.dedupe import CompletedRequestTable, split_request_id


def test_split_request_id():
    assert split_request_id("c3#17") == ("c3", 17)
    assert split_request_id("multi#part#9") == ("multi#part", 9)
    assert split_request_id("no-counter") == (None, None)
    assert split_request_id("trailing#") == (None, None)
    assert split_request_id("#5") == (None, None)
    assert split_request_id("c#notanumber") == (None, None)


def test_lookup_returns_recorded_reply():
    table = CompletedRequestTable()
    table.record("c#1", "reply-1")
    assert table.lookup("c#1") == "reply-1"
    assert table.lookup("c#2") is None


def test_watermark_prunes_previous_reply():
    table = CompletedRequestTable()
    for counter in range(1, 6):
        table.record(f"c#{counter}", f"reply-{counter}")
    # only the latest reply survives; the client consumed the others
    assert len(table) == 1
    assert table.lookup("c#5") == "reply-5"
    assert table.lookup("c#4") is None
    assert table.watermark("c") == 5
    assert table.per_client_retained() == {"c": 1}


def test_many_clients_each_keep_one_reply():
    table = CompletedRequestTable()
    for client in range(10):
        for counter in range(1, 4):
            table.record(f"c{client}#{counter}", counter)
    assert len(table) == 10
    assert all(count == 1 for count in table.per_client_retained().values())


def test_superseded_ghosts_are_fenced():
    table = CompletedRequestTable()
    table.record("c#1", "a")
    table.record("c#2", "b")
    # counter 1 is below the watermark with no stored reply: a ghost
    assert table.is_superseded("c#1")
    # the current request is not superseded (its reply is stored)
    assert not table.is_superseded("c#2")
    # future counters are never superseded
    assert not table.is_superseded("c#3")
    # non-conforming ids cannot be fenced
    assert not table.is_superseded("weird-id")


def test_lru_backstop_caps_non_conforming_ids():
    table = CompletedRequestTable(max_entries=4)
    for n in range(10):
        table.record(f"opaque-{n}", n)  # no '#counter': plain LRU entries
    assert len(table) == 4
    assert table.lookup("opaque-9") == 9
    assert table.lookup("opaque-0") is None


def test_lookup_refreshes_lru_position():
    table = CompletedRequestTable(max_entries=2)
    table.record("a-1", 1)
    table.record("b-1", 2)
    assert table.lookup("a-1") == 1  # freshen a-1
    table.record("c-1", 3)  # evicts b-1, the least recently used
    assert table.lookup("a-1") == 1
    assert table.lookup("b-1") is None
