"""Invocation linearizability of the cluster, checked with Wing & Gong.

Concurrent clients hammer counter objects; every completed operation is
recorded with its real (simulated) time interval, and the checker must
find a legal linearisation.  This is the paper's §3.1 guarantee made
mechanically checkable.
"""

import pytest

from repro.core.linearizability import History, check_linearizable
from repro.errors import ReproError

from tests.cluster.conftest import build_cluster


def record_invoke(sim, history, client, oid, method, args, kind, target):
    start = sim.now
    op = history.begin(client.name, kind, target, args, start)
    value = yield from client.invoke(oid, method, *args)
    history.finish(op, sim.now, value)
    return value


def counter_model(initial=0):
    """Sequential spec for the Counter type's increment/read methods."""

    state0 = initial

    def apply(state, op):
        if op.kind == "increment":
            new_state = state + op.args[0]
            return op.result == new_state, new_state
        if op.kind == "read":
            return op.result == state, state
        raise ReproError(f"unexpected op {op.kind}")

    return state0, apply


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_concurrent_counter_history_linearizable(seed):
    sim, cluster = build_cluster(seed=seed)
    oid = cluster.create_object("Counter")
    history = History()
    clients = [cluster.client(f"c{i}") for i in range(6)]

    def client_load(client, operations):
        rng = sim.rng(f"load.{client.name}")
        for _ in range(operations):
            yield sim.timeout(rng.uniform(0, 1.0))
            if rng.random() < 0.5:
                yield from record_invoke(
                    sim, history, client, oid, "increment", (1,), "increment", "counter"
                )
            else:
                yield from record_invoke(
                    sim, history, client, oid, "read", (), "read", "counter"
                )

    processes = [sim.process(client_load(client, 3)) for client in clients]
    sim.run_until_triggered(sim.all_of(processes), limit=120_000)

    initial, apply_fn = counter_model()
    assert check_linearizable(history, initial, apply_fn)


def test_replica_reads_are_linearizable_with_writer(seed=5):
    sim, cluster = build_cluster(seed=seed)
    oid = cluster.create_object("Counter")
    history = History()
    writer = cluster.client("writer")
    readers = [cluster.client(f"r{i}") for i in range(4)]

    def write_load():
        for _ in range(4):
            yield from record_invoke(
                sim, history, writer, oid, "increment", (1,), "increment", "counter"
            )
            yield sim.timeout(0.3)

    def read_load(client):
        rng = sim.rng(f"load.{client.name}")
        for _ in range(4):
            yield sim.timeout(rng.uniform(0, 0.8))
            yield from record_invoke(
                sim, history, client, oid, "read", (), "read", "counter"
            )

    processes = [sim.process(write_load())] + [sim.process(read_load(r)) for r in readers]
    sim.run_until_triggered(sim.all_of(processes), limit=120_000)

    initial, apply_fn = counter_model()
    assert check_linearizable(history, initial, apply_fn)


def test_linearizability_holds_across_failover():
    sim, cluster = build_cluster(seed=9)
    oid = cluster.create_object("Counter")
    history = History()
    client = cluster.client("c0")

    def load():
        for round_number in range(6):
            if round_number == 3:
                cluster.crash_node("store-0")
            yield from record_invoke(
                sim, history, client, oid, "increment", (1,), "increment", "counter"
            )
            value = yield from record_invoke(
                sim, history, client, oid, "read", (), "read", "counter"
            )

    process = sim.process(load())
    sim.run_until_triggered(process, limit=120_000)
    initial, apply_fn = counter_model()
    assert check_linearizable(history, initial, apply_fn)
