"""End-to-end cluster tests: the full request path on a healthy cluster."""

import pytest

from repro.core import ObjectId
from repro.errors import InvocationFailed

from tests.cluster.conftest import build_cluster, run_ops


def test_mutate_then_read(small_cluster):
    sim, cluster = small_cluster
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    assert cluster.run_invoke(client, oid, "increment", 5) == 5
    assert cluster.run_invoke(client, oid, "read") == 5


def test_writes_replicate_to_all_backups(small_cluster):
    sim, cluster = small_cluster
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 3)
    sim.run(until=sim.now + 5)
    from repro.core import keyspace

    key = keyspace.value_key(oid, "count")
    values = {
        name: node.runtime.storage.get(key) for name, node in cluster.nodes.items()
    }
    assert len(set(values.values())) == 1
    assert all(value is not None for value in values.values())


def test_readonly_runs_on_any_replica(small_cluster):
    sim, cluster = small_cluster
    oid = cluster.create_object("Counter")
    clients = [cluster.client(f"c{i}") for i in range(6)]
    cluster.run_invoke(clients[0], oid, "increment", 1)
    ops = [(client, oid, "read", ()) for client in clients]
    results = run_ops(sim, cluster, ops)
    assert results == [1] * 6
    served = sum(node.stats.readonly_requests for node in cluster.nodes.values())
    assert served == 6
    # More than one replica served reads (uniform routing over 3 members).
    serving_nodes = [n for n in cluster.nodes.values() if n.stats.readonly_requests]
    assert len(serving_nodes) >= 2


def test_concurrent_increments_serialise_per_object(small_cluster):
    sim, cluster = small_cluster
    oid = cluster.create_object("Counter")
    clients = [cluster.client(f"c{i}") for i in range(10)]
    ops = [(client, oid, "increment", (1,)) for client in clients]
    results = run_ops(sim, cluster, ops)
    # Every increment observed a distinct predecessor state: no lost updates.
    assert sorted(results) == list(range(1, 11))
    final = cluster.run_invoke(clients[0], oid, "read")
    assert final == 10


def test_nested_call_within_replica_set(small_cluster):
    sim, cluster = small_cluster
    a = cluster.create_object("Counter")
    b = cluster.create_object("Counter")
    client = cluster.client("c0")
    assert cluster.run_invoke(client, a, "increment_remote", b, 4) == 4
    assert cluster.run_invoke(client, a, "read") == 4
    assert cluster.run_invoke(client, b, "read") == 4


def test_collections_roundtrip(small_cluster):
    sim, cluster = small_cluster
    oid = cluster.create_object("Notebook")
    client = cluster.client("c0")
    for text in ["a", "b", "c"]:
        cluster.run_invoke(client, oid, "add", text)
    assert cluster.run_invoke(client, oid, "listing") == ["a", "b", "c"]


def test_replica_read_after_write_is_fresh(small_cluster):
    """Invocation linearizability: any replica read after a write's reply
    must see that write (the primary waits for all backup acks)."""
    sim, cluster = small_cluster
    oid = cluster.create_object("Counter")
    writer = cluster.client("writer")
    readers = [cluster.client(f"r{i}") for i in range(9)]

    def sequence():
        for round_number in range(1, 4):
            yield from writer.invoke(oid, "increment", 1)
            for reader in readers:
                value = yield from reader.invoke(oid, "read")
                assert value == round_number, (value, round_number)

    process = sim.process(sequence())
    sim.run_until_triggered(process, limit=60_000)


def test_unknown_method_fails_cleanly(small_cluster):
    sim, cluster = small_cluster
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    with pytest.raises(InvocationFailed) as excinfo:
        cluster.run_invoke(client, oid, "no_such_method")
    assert "no_such_method" in str(excinfo.value)


def test_unknown_object_fails_cleanly(small_cluster):
    sim, cluster = small_cluster
    client = cluster.client("c0", max_attempts=2, request_timeout_ms=5.0)
    with pytest.raises(InvocationFailed):
        cluster.run_invoke(client, ObjectId.from_name("ghost"), "read")


def test_result_cache_serves_repeated_reads(small_cluster):
    sim, cluster = small_cluster
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 2)
    for _ in range(8):
        assert cluster.run_invoke(client, oid, "read") == 2
    hits = sum(node.runtime.stats.cache_hits for node in cluster.nodes.values())
    assert hits > 0


def test_cache_never_serves_stale_after_write(small_cluster):
    sim, cluster = small_cluster
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    for expected in range(1, 6):
        assert cluster.run_invoke(client, oid, "increment", 1) == expected
        assert cluster.run_invoke(client, oid, "read") == expected


def test_stale_epoch_request_rejected_and_retried(small_cluster):
    sim, cluster = small_cluster
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    client.epoch = 0  # stale on purpose; node is at epoch 1
    assert cluster.run_invoke(client, oid, "increment", 1) == 1
    assert cluster.total_node_stats()["rejected_wrong_epoch"] >= 0
    assert client.epoch >= 1  # refreshed along the way


def test_deterministic_replay():
    def run_once():
        sim, cluster = build_cluster(seed=42)
        oid = cluster.create_object("Counter", object_id=ObjectId.from_name("det"))
        clients = [cluster.client(f"c{i}") for i in range(5)]
        ops = [(c, oid, "increment", (1,)) for c in clients]
        run_ops(sim, cluster, ops)
        return [round(l, 6) for c in clients for l, _ in c.completions]

    assert run_once() == run_once()


def test_sharded_cluster_remote_nested_call():
    sim, cluster = build_cluster(seed=3, num_storage_nodes=4, num_shards=2)
    # Find two objects owned by different shards.
    a = cluster.create_object("Counter")
    b = None
    for attempt in range(50):
        candidate = cluster.create_object("Counter")
        if (
            cluster.bootstrap_shard_map.shard_for(candidate).shard_id
            != cluster.bootstrap_shard_map.shard_for(a).shard_id
        ):
            b = candidate
            break
    assert b is not None
    client = cluster.client("c0")
    assert cluster.run_invoke(client, a, "increment_remote", b, 2) == 2
    assert cluster.run_invoke(client, a, "read") == 2
    assert cluster.run_invoke(client, b, "read") == 2
    assert cluster.total_node_stats()["remote_charges"] == 1
