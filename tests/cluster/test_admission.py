"""Store-node admission: shed/retry-after end-to-end, penalty bookkeeping."""

import pytest

from repro.errors import RequestTimeout

from tests.cluster.conftest import build_cluster


def run_process(sim, generator, limit_ms=600_000):
    process = sim.process(generator)
    return sim.run_until_triggered(process, limit=sim.now + limit_ms)


def total_shed(cluster):
    return sum(node.stats.shed_requests for node in cluster.nodes.values())


def test_shed_request_retries_after_server_advice_and_succeeds():
    # 1 req/s with the default burst of 8: the ninth quick mutation finds
    # an empty bucket, gets a RetryAfter, sleeps the advised refill time
    # (hundreds of simulated ms), then lands.
    sim, cluster = build_cluster(admission_control=True, tenant_rate_limit=1.0)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")

    def driver():
        for _ in range(9):
            yield from client.invoke(oid, "increment", 1)
        return (yield from client.invoke(oid, "read"))

    started = sim.now
    assert run_process(sim, driver()) == 9
    assert total_shed(cluster) >= 1
    # The wait was the server-advised bucket deficit, not the retry
    # policy's jitter: LinearJitterBackoff would add ~1 ms, the advice
    # is ~1000 ms at 1 req/s.
    assert sim.now - started > 100.0


def test_protect_reads_serves_reads_while_shedding_writes():
    sim, cluster = build_cluster(admission_control=True)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0", max_attempts=2, request_timeout_ms=50.0)
    assert run_process(sim, client.invoke(oid, "increment", 1)) == 1
    # Force the backpressure gate open everywhere: every mutating request
    # sheds, every attempt, until the queues would drain.
    for node in cluster.nodes.values():
        node._admission.pressure_fn = lambda: 1_000
    with pytest.raises(RequestTimeout, match="shed by"):
        run_process(sim, client.invoke(oid, "increment", 1))
    # ... but the read SLO survives the (simulated) write storm.
    assert run_process(sim, client.invoke(oid, "read")) == 1
    assert total_shed(cluster) >= 2  # both attempts of the write


def test_shed_replies_are_not_remembered_as_completed():
    """A shed is an admission decision, not an execution: the retried
    request must be re-admitted and actually run, not replayed from the
    at-most-once cache."""
    sim, cluster = build_cluster(admission_control=True, tenant_rate_limit=1.0)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")

    def driver():
        for _ in range(9):
            yield from client.invoke(oid, "increment", 1)

    run_process(sim, driver())
    assert run_process(sim, client.invoke(oid, "read")) == 9


def test_penalty_map_prunes_expired_and_caps_size():
    sim, cluster = build_cluster()
    client = cluster.client("c0")
    for i in range(3 * client.PENALTY_CAP):
        client._note_penalty(f"backup-{i}")
    assert len(client._penalty) <= client.PENALTY_CAP
    # Once the penalties expire, routing a read drops them all.
    sim.run(until=sim.now + 2 * client.REPLICA_PENALTY_MS)
    oid = cluster.create_object("Counter")
    client._route(oid, readonly=True)
    assert not client._penalty


def test_note_penalty_keeps_the_latest_expiring_entries():
    sim, cluster = build_cluster()
    client = cluster.client("c0")
    client._penalty = {f"old-{i}": sim.now + 1.0 for i in range(client.PENALTY_CAP)}
    sim.run(until=sim.now + 0.5)
    client._note_penalty("fresh")
    assert "fresh" in client._penalty
    assert len(client._penalty) <= client.PENALTY_CAP
