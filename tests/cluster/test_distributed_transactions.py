"""Tests for distributed transactions (2PC + no-wait locking)."""

import pytest

from repro.apps.bank import account_type
from repro.cluster.transactions import (
    TransactionCoordinator,
    enable_transactions,
)
from repro.core.transactions import TransactionAborted
from repro.errors import InvocationError

from tests.cluster.conftest import build_cluster


def txn_cluster(seed=71, **kwargs):
    sim, cluster = build_cluster(seed=seed, **kwargs)
    cluster.register_type(account_type())
    enable_transactions(cluster)
    return sim, cluster


def run(sim, generator, limit=600_000):
    process = sim.process(generator)
    return sim.run_until_triggered(process, limit=limit)


def test_single_shard_commit():
    sim, cluster = txn_cluster()
    a = cluster.create_object("Account", initial={"balance": 100})
    b = cluster.create_object("Account", initial={"balance": 0})
    coordinator = TransactionCoordinator(cluster)

    def body():
        txn = coordinator.begin()
        yield from txn.invoke(a, "withdraw", 40)
        yield from txn.invoke(b, "deposit", 40)
        yield from txn.commit()
        return txn.state

    assert run(sim, body()) == "committed"
    client = cluster.client("check")
    assert cluster.run_invoke(client, a, "get_balance") == 60
    assert cluster.run_invoke(client, b, "get_balance") == 40


def test_cross_shard_commit():
    sim, cluster = txn_cluster(seed=72, num_storage_nodes=4, num_shards=2)
    # Find accounts on different shards.
    a = cluster.create_object("Account", initial={"balance": 100})
    b = None
    while b is None:
        candidate = cluster.create_object("Account", initial={"balance": 0})
        if (
            cluster.bootstrap_shard_map.shard_for(candidate).shard_id
            != cluster.bootstrap_shard_map.shard_for(a).shard_id
        ):
            b = candidate
    coordinator = TransactionCoordinator(cluster)

    def body():
        txn = coordinator.begin()
        yield from txn.invoke(a, "withdraw", 30)
        yield from txn.invoke(b, "deposit", 30)
        yield from txn.commit()
        return len(txn.participants)

    assert run(sim, body()) == 2  # two shard primaries participated
    client = cluster.client("check")
    assert cluster.run_invoke(client, a, "get_balance") == 70
    assert cluster.run_invoke(client, b, "get_balance") == 30


def test_abort_discards_on_all_participants():
    sim, cluster = txn_cluster(seed=73, num_storage_nodes=4, num_shards=2)
    a = cluster.create_object("Account", initial={"balance": 100})
    b = cluster.create_object("Account", initial={"balance": 0})
    coordinator = TransactionCoordinator(cluster)

    def body():
        txn = coordinator.begin()
        yield from txn.invoke(a, "withdraw", 30)
        yield from txn.invoke(b, "deposit", 30)
        yield from txn.abort()

    run(sim, body())
    client = cluster.client("check")
    assert cluster.run_invoke(client, a, "get_balance") == 100
    assert cluster.run_invoke(client, b, "get_balance") == 0


def test_uncommitted_invisible_and_plain_writes_blocked_until_release():
    sim, cluster = txn_cluster(seed=74)
    a = cluster.create_object("Account", initial={"balance": 100})
    coordinator = TransactionCoordinator(cluster)
    observed = {}

    def body():
        txn = coordinator.begin()
        yield from txn.invoke(a, "withdraw", 30)
        # A plain read-only invocation sees only committed state.
        client = cluster.client("peek")
        observed["mid"] = yield from client.invoke(a, "get_balance")
        yield from txn.commit()
        observed["after"] = yield from client.invoke(a, "get_balance")

    run(sim, body())
    assert observed == {"mid": 100, "after": 70}


def test_guest_failure_poisons_and_aborts():
    sim, cluster = txn_cluster(seed=75)
    a = cluster.create_object("Account", initial={"balance": 10})
    coordinator = TransactionCoordinator(cluster)

    def body():
        txn = coordinator.begin()
        yield from txn.invoke(a, "deposit", 5)
        with pytest.raises(InvocationError):
            yield from txn.invoke(a, "withdraw", 1000)
        return txn.state

    state = run(sim, body())
    assert state == "aborted"
    client = cluster.client("check")
    assert cluster.run_invoke(client, a, "get_balance") == 10


def test_no_wait_conflict_aborts_second_transaction():
    sim, cluster = txn_cluster(seed=76)
    a = cluster.create_object("Account", initial={"balance": 100})
    first = TransactionCoordinator(cluster, name="txn-c1")
    second = TransactionCoordinator(cluster, name="txn-c2")
    outcome = {}

    def body():
        txn1 = first.begin()
        yield from txn1.invoke(a, "withdraw", 1)
        txn2 = second.begin()
        try:
            yield from txn2.invoke(a, "withdraw", 1)
        except TransactionAborted:
            outcome["conflicted"] = True
        yield from txn1.commit()

    run(sim, body())
    assert outcome.get("conflicted")
    assert second.stats["conflicts"] == 1
    client = cluster.client("check")
    assert cluster.run_invoke(client, a, "get_balance") == 99


def test_run_retries_conflicts_to_completion():
    sim, cluster = txn_cluster(seed=77)
    a = cluster.create_object("Account", initial={"balance": 0})
    coordinators = [TransactionCoordinator(cluster, name=f"txn-r{i}") for i in range(4)]

    def make_body(coordinator):
        def body(txn):
            balance = yield from txn.invoke(a, "get_balance")
            yield from txn.invoke(a, "deposit", 1)
            return balance

        return body

    def runner(coordinator):
        yield from coordinator.run(make_body(coordinator))

    processes = [sim.process(runner(c)) for c in coordinators]
    sim.run_until_triggered(sim.all_of(processes), limit=600_000)
    client = cluster.client("check")
    assert cluster.run_invoke(client, a, "get_balance") == 4


def test_committed_writes_replicate_to_backups():
    sim, cluster = txn_cluster(seed=78)
    a = cluster.create_object("Account", initial={"balance": 100})
    coordinator = TransactionCoordinator(cluster)

    def body():
        txn = coordinator.begin()
        yield from txn.invoke(a, "withdraw", 25)
        yield from txn.commit()

    run(sim, body())
    sim.run(until=sim.now + 10)
    from repro.core import keyspace

    key = keyspace.value_key(a, "balance")
    values = {node.runtime.storage.get(key) for node in cluster.nodes.values()}
    assert len(values) == 1  # identical everywhere


def test_nested_calls_join_transaction_on_same_node():
    sim, cluster = txn_cluster(seed=79)
    a = cluster.create_object("Account", initial={"balance": 100})
    b = cluster.create_object("Account", initial={"balance": 0})
    coordinator = TransactionCoordinator(cluster)
    observed = {}

    def body():
        txn = coordinator.begin()
        # transfer() nested-invokes withdraw + deposit; all one commit.
        yield from txn.invoke(a, "transfer", b, 20)
        client = cluster.client("peek2")
        observed["mid_b"] = yield from client.invoke(b, "get_balance")
        yield from txn.commit()

    run(sim, body())
    assert observed["mid_b"] == 0  # invisible before commit
    client = cluster.client("check")
    assert cluster.run_invoke(client, a, "get_balance") == 80
    assert cluster.run_invoke(client, b, "get_balance") == 20


def test_money_conserved_under_concurrent_distributed_transfers():
    sim, cluster = txn_cluster(seed=80, num_storage_nodes=4, num_shards=2)
    accounts = [cluster.create_object("Account", initial={"balance": 50}) for _ in range(4)]
    coordinators = [TransactionCoordinator(cluster, name=f"txn-m{i}") for i in range(4)]

    def transfer_body(source, sink, amount):
        def body(txn):
            balance = yield from txn.invoke(source, "get_balance")
            if balance >= amount:
                yield from txn.invoke(source, "withdraw", amount)
                yield from txn.invoke(sink, "deposit", amount)
            return None

        return body

    def runner(index, coordinator):
        rng = sim.rng(f"mix.{index}")
        for _ in range(3):
            source, sink = rng.sample(accounts, 2)
            try:
                yield from coordinator.run(transfer_body(source, sink, rng.randint(1, 30)))
            except TransactionAborted:
                pass

    processes = [sim.process(runner(i, c)) for i, c in enumerate(coordinators)]
    sim.run_until_triggered(sim.all_of(processes), limit=600_000)
    client = cluster.client("audit")
    balances = [cluster.run_invoke(client, a, "get_balance") for a in accounts]
    assert sum(balances) == 200
    assert all(balance >= 0 for balance in balances)
