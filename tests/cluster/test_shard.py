"""Unit tests for microshard mapping."""

import random

import pytest

from repro.cluster.shard import ReplicaSet, ShardMap
from repro.core import ObjectId
from repro.errors import ShardUnavailableError


def make_map(num_shards=3, nodes_per_shard=2):
    replica_sets = []
    node = 0
    for shard_id in range(num_shards):
        members = [f"n{node + i}" for i in range(nodes_per_shard)]
        node += nodes_per_shard
        replica_sets.append(ReplicaSet(shard_id, members[0], members[1:]))
    return ShardMap(replica_sets=replica_sets)


def test_assignment_is_deterministic():
    shard_map = make_map()
    oid = ObjectId.from_name("x")
    assert shard_map.shard_for(oid).shard_id == shard_map.shard_for(oid).shard_id


def test_assignment_distributes_reasonably():
    shard_map = make_map(num_shards=4)
    rng = random.Random(0)
    counts = [0, 0, 0, 0]
    for _ in range(2000):
        counts[shard_map.shard_for(ObjectId.generate(rng)).shard_id] += 1
    assert min(counts) > 300  # no empty/starved shard


def test_override_redirects_object():
    shard_map = make_map()
    oid = ObjectId.from_name("moveme")
    home = shard_map.shard_for(oid).shard_id
    target = (home + 1) % 3
    shard_map.move_override(oid, target)
    assert shard_map.shard_for(oid).shard_id == target


def test_override_back_home_clears_table():
    shard_map = make_map()
    oid = ObjectId.from_name("roundtrip")
    home = shard_map.default_shard_id(oid)
    shard_map.move_override(oid, (home + 1) % 3)
    shard_map.move_override(oid, home)
    assert shard_map.overrides == {}


def test_override_to_unknown_shard_rejected():
    shard_map = make_map()
    with pytest.raises(ShardUnavailableError):
        shard_map.move_override(ObjectId.from_name("x"), 99)


def test_copy_is_deep():
    shard_map = make_map()
    clone = shard_map.copy()
    clone.replica_sets[0].primary = "other"
    clone.overrides["foo" * 10 + "ab"] = 1
    assert shard_map.replica_sets[0].primary != "other"
    assert shard_map.overrides == {}


def test_nodes_lists_every_member_once():
    shard_map = make_map(num_shards=2, nodes_per_shard=3)
    assert shard_map.nodes() == [f"n{i}" for i in range(6)]


def test_shard_of_node():
    shard_map = make_map()
    assert shard_map.shard_of_node("n0").shard_id == 0
    assert shard_map.shard_of_node("n3").shard_id == 1
    assert shard_map.shard_of_node("ghost") is None


def test_empty_map_raises():
    with pytest.raises(ShardUnavailableError):
        ShardMap().shard_for(ObjectId.from_name("x"))


def test_primary_for_matches_shard():
    shard_map = make_map()
    oid = ObjectId.from_name("p")
    assert shard_map.primary_for(oid) == shard_map.shard_for(oid).primary
