"""Unit tests for the per-object lock table."""

import pytest

from repro.cluster.scheduler import ObjectLockTable
from repro.errors import SimulationError
from repro.sim import Simulation


def test_uncontended_acquire_is_immediate():
    sim = Simulation()
    locks = ObjectLockTable(sim)
    event = locks.acquire("obj")
    sim.run()
    assert event.triggered and event.ok
    assert locks.is_locked("obj")


def test_same_object_serialises():
    sim = Simulation()
    locks = ObjectLockTable(sim)
    order = []

    def worker(name, hold_ms):
        yield locks.acquire("obj")
        order.append((name, "in", sim.now))
        yield sim.timeout(hold_ms)
        order.append((name, "out", sim.now))
        locks.release("obj")

    sim.process(worker("a", 5))
    sim.process(worker("b", 5))
    sim.run()
    assert order == [("a", "in", 0.0), ("a", "out", 5.0), ("b", "in", 5.0), ("b", "out", 10.0)]


def test_different_objects_run_concurrently():
    sim = Simulation()
    locks = ObjectLockTable(sim)
    ends = []

    def worker(oid):
        yield locks.acquire(oid)
        yield sim.timeout(5)
        locks.release(oid)
        ends.append(sim.now)

    sim.process(worker("x"))
    sim.process(worker("y"))
    sim.run()
    assert ends == [5.0, 5.0]


def test_fifo_ordering():
    sim = Simulation()
    locks = ObjectLockTable(sim)
    granted = []

    def worker(name, start_delay):
        yield sim.timeout(start_delay)
        yield locks.acquire("obj")
        granted.append(name)
        yield sim.timeout(10)
        locks.release("obj")

    for index, name in enumerate(["first", "second", "third"]):
        sim.process(worker(name, index + 1))
    sim.run()
    assert granted == ["first", "second", "third"]


def test_release_unheld_raises():
    sim = Simulation()
    locks = ObjectLockTable(sim)
    with pytest.raises(SimulationError):
        locks.release("never")


def test_stats_track_contention():
    sim = Simulation()
    locks = ObjectLockTable(sim)

    def worker():
        yield locks.acquire("obj")
        yield sim.timeout(1)
        locks.release("obj")

    for _ in range(3):
        sim.process(worker())
    sim.run()
    assert locks.stats.acquisitions == 3
    assert locks.stats.contentions == 2
    assert locks.stats.max_queue_length >= 1
    assert locks.queue_length("obj") == 0


def test_queue_length_histogram_records_every_acquire():
    from repro.obs.registry import MetricsRegistry

    sim = Simulation()
    registry = MetricsRegistry(clock=lambda: sim.now)
    labels = {"node": "store-0"}
    locks = ObjectLockTable(sim, registry=registry, labels=labels)

    def worker():
        yield locks.acquire("obj")
        yield sim.timeout(1)
        locks.release("obj")

    def late_worker():
        yield sim.timeout(10)  # after the pile-up drains: second 0-depth sample
        yield locks.acquire("obj")
        locks.release("obj")

    for _ in range(3):
        sim.process(worker())
    sim.process(late_worker())
    sim.run()

    hist = registry.get("scheduler_lock_queue_length", labels)
    assert hist is not None
    # One observation per acquire: two uncontended (depth 0) plus the two
    # that queued behind the first holder (depths 1 and 2).
    assert hist.count == 4
    assert hist.sum == pytest.approx(3.0)
    assert hist.quantile(1.0) == pytest.approx(2.0)
    # The legacy high-water-mark gauge still works alongside the histogram.
    assert locks.stats.max_queue_length == 2
