"""Paxos tests: basic protocol behaviour plus safety under adversity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.paxos import PaxosNode
from repro.sim import ConstantLatency, Network, Simulation


def build_group(sim, count=3, drop_probability=0.0, **node_kwargs):
    net = Network(sim, latency=ConstantLatency(0.1))
    net.drop_probability = drop_probability
    names = [f"p{i}" for i in range(count)]
    nodes = {}
    decided: dict[str, list] = {name: [] for name in names}

    for name in names:
        host = net.add_host(name)
        node = PaxosNode(
            sim,
            net,
            name,
            names,
            on_decide=lambda slot, value, n=name: decided[n].append((slot, value)),
            **node_kwargs,
        )
        nodes[name] = node

        def serve(host=host, node=node):
            while True:
                message = yield host.recv()
                node.handle(message.payload)

        sim.process(serve(), name=f"{name}.serve")
    return net, nodes, decided


def test_single_proposer_decides():
    sim = Simulation(seed=1)
    _net, nodes, decided = build_group(sim)
    process = sim.process(nodes["p0"].propose(0, "value-A"))
    result = sim.run_until_triggered(process, limit=1000)
    assert result == "value-A"
    sim.run(until=sim.now + 10)
    for name in nodes:
        assert decided[name] == [(0, "value-A")]


def test_competing_proposers_agree():
    sim = Simulation(seed=2)
    _net, nodes, decided = build_group(sim)
    p0 = sim.process(nodes["p0"].propose(0, "from-p0"))
    p1 = sim.process(nodes["p1"].propose(0, "from-p1"))
    gate = sim.all_of([p0, p1])
    values = sim.run_until_triggered(gate, limit=5000)
    results = list(values.values())
    assert results[0] == results[1]
    assert results[0] in ("from-p0", "from-p1")


def test_multiple_slots_deliver_in_order():
    sim = Simulation(seed=3)
    _net, nodes, decided = build_group(sim)

    def propose_all():
        for slot, value in enumerate(["a", "b", "c"]):
            yield from nodes["p0"].propose(slot, value)

    process = sim.process(propose_all())
    sim.run_until_triggered(process, limit=5000)
    sim.run(until=sim.now + 10)
    assert decided["p1"] == [(0, "a"), (1, "b"), (2, "c")]


def test_decision_survives_minority_crash():
    sim = Simulation(seed=4)
    net, nodes, decided = build_group(sim)
    net.crash("p2")
    process = sim.process(nodes["p0"].propose(0, "majority"))
    assert sim.run_until_triggered(process, limit=5000) == "majority"
    sim.run(until=sim.now + 10)
    assert decided["p1"] == [(0, "majority")]
    assert decided["p2"] == []  # crashed learner hears nothing


def test_no_progress_without_quorum_then_recovery():
    sim = Simulation(seed=5)
    net, nodes, decided = build_group(sim)
    net.crash("p1")
    net.crash("p2")
    process = sim.process(nodes["p0"].propose(0, "stalled"))
    sim.run(until=200)
    assert not process.triggered  # no quorum, still retrying
    net.recover("p1")
    result = sim.run_until_triggered(process, limit=10_000)
    assert result == "stalled"


def test_message_loss_does_not_violate_safety():
    sim = Simulation(seed=6)
    net, nodes, decided = build_group(sim, drop_probability=0.2, prepare_timeout_ms=5.0)
    p0 = sim.process(nodes["p0"].propose(0, "A"))
    p1 = sim.process(nodes["p1"].propose(0, "B"))
    gate = sim.all_of([p0, p1])
    values = sim.run_until_triggered(gate, limit=60_000)
    results = set(values.values())
    assert len(results) == 1  # both proposers learned the same decision


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    drop=st.floats(min_value=0.0, max_value=0.3),
    proposers=st.integers(min_value=1, max_value=3),
)
def test_agreement_property(seed, drop, proposers):
    """Under random loss and competing proposers, all deciders agree."""
    sim = Simulation(seed=seed)
    _net, nodes, decided = build_group(sim, drop_probability=drop, prepare_timeout_ms=5.0)
    names = list(nodes)
    processes = [
        sim.process(nodes[names[i]].propose(0, f"value-{i}")) for i in range(proposers)
    ]
    gate = sim.all_of(processes)
    values = sim.run_until_triggered(gate, limit=200_000)
    assert len(set(values.values())) == 1
    sim.run(until=sim.now + 50)
    chosen = {slot_value for entries in decided.values() for slot_value in entries}
    assert len(chosen) <= 1  # at most one (slot, value) ever learned for slot 0
