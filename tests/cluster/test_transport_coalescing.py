"""Transport coalescing + ack piggybacking at the cluster level (§5j).

Two guarantees under test: the knob is inert when off (pinned event and
message counts — the historical wire behavior byte-for-byte), and with
it on, deferred cumulative acks leave the watermark protocol exactly
where dedicated per-frame acks would have left it once the cluster
quiesces.
"""

from tests.cluster.conftest import build_cluster


def _run_workload(coalescing, seed=3, **kwargs):
    sim, cluster = build_cluster(
        seed=seed, transport_coalescing=coalescing, **kwargs
    )
    oids = [cluster.create_object("Counter") for _ in range(4)]
    clients = [cluster.client(f"c{i}") for i in range(4)]

    def loop(client, oid):
        total = 0
        for _ in range(10):
            total = yield from client.invoke(oid, "increment", 1)
        return total

    processes = [
        sim.process(loop(client, oids[i])) for i, client in enumerate(clients)
    ]
    gate = sim.all_of(processes)
    values = sim.run_until_triggered(gate, limit=sim.now + 120_000)
    assert all(values[p] == 10 for p in processes)
    assert cluster.quiesce()
    return sim, cluster


def _settlement_state(cluster):
    """Every pipeline's settlement watermark and every backup's applied
    point — what the ack protocol exists to advance."""
    state = {}
    for name, node in sorted(cluster.nodes.items()):
        for shard_id, pipeline in sorted(node.pipelines.items()):
            state[("settled", name, shard_id)] = pipeline.settled_through
        for shard_id, applier in sorted(node.backup_appliers.items()):
            state[("applied", name, shard_id)] = applier.applied_through
    return state


def test_knob_off_is_byte_identical():
    """Same seed, knob off twice: pinned counts (determinism), and the
    frame/message counters stay equal (no coalescing in the pipeline)."""
    sim_a, cluster_a = _run_workload(coalescing=False)
    sim_b, cluster_b = _run_workload(coalescing=False)
    assert sim_a.events_scheduled == sim_b.events_scheduled
    assert cluster_a.net.stats.messages_sent == cluster_b.net.stats.messages_sent
    assert (
        cluster_a.net.stats.frames_sent == cluster_a.net.stats.messages_sent
    )
    assert all(
        node.stats.acks_deferred == 0 for node in cluster_a.nodes.values()
    )


def test_coalescing_cuts_wire_messages_and_defers_acks():
    _sim_off, cluster_off = _run_workload(coalescing=False)
    _sim_on, cluster_on = _run_workload(coalescing=True)
    assert (
        cluster_on.net.stats.messages_sent
        < cluster_off.net.stats.messages_sent
    )
    deferred = sum(
        node.stats.acks_deferred for node in cluster_on.nodes.values()
    )
    sent = sum(
        node.stats.acks_piggybacked + node.stats.acks_timer_flushed
        for node in cluster_on.nodes.values()
    )
    assert deferred > 0
    # Cumulative merging means fewer ack sends than deferrals, but every
    # deferred watermark must eventually leave the node one way or the
    # other (quiesce() above would hang otherwise).
    assert 0 < sent <= deferred
    assert all(not node._pending_acks for node in cluster_on.nodes.values())


def test_deferred_acks_settle_to_the_same_watermarks():
    """After quiescing, piggybacked/timer-flushed cumulative acks must
    leave settlement and application watermarks exactly where dedicated
    per-frame acks left them — deferral changes timing, never outcome."""
    _sim_off, cluster_off = _run_workload(coalescing=False)
    _sim_on, cluster_on = _run_workload(coalescing=True)
    assert _settlement_state(cluster_on) == _settlement_state(cluster_off)


def test_coalescing_with_replica_reads_interleaved():
    """Writes + reads with both protocols on: replica reads stay
    monotonic while their acks/lease state travel the deferred path."""
    sim, cluster = build_cluster(seed=5, transport_coalescing=True)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")

    def loop():
        for i in range(1, 16):
            value = yield from client.invoke(oid, "increment", 1)
            assert value == i
            read = yield from client.invoke(oid, "read")
            assert read == i, (read, i)

    process = sim.process(loop())
    sim.run_until_triggered(process, limit=sim.now + 120_000)
    assert cluster.quiesce()


def test_coalescing_determinism_same_seed():
    sim_a, cluster_a = _run_workload(coalescing=True)
    sim_b, cluster_b = _run_workload(coalescing=True)
    assert sim_a.events_scheduled == sim_b.events_scheduled
    assert (
        cluster_a.net.stats.messages_sent == cluster_b.net.stats.messages_sent
    )
    assert _settlement_state(cluster_a) == _settlement_state(cluster_b)
