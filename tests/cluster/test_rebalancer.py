"""Tests for load-driven microshard rebalancing."""

import pytest

from repro.cluster.rebalancer import Rebalancer
from repro.core import ObjectId

from tests.cluster.conftest import build_cluster


def sharded_cluster(seed=41):
    return build_cluster(seed=seed, num_storage_nodes=4, num_shards=2)


def objects_on_shard(cluster, shard_id, count=6):
    """Create counters until `count` of them live on `shard_id`."""
    result = []
    attempt = 0
    while len(result) < count:
        oid = cluster.create_object(
            "Counter", object_id=ObjectId.from_name(f"reb-{shard_id}-{attempt}")
        )
        attempt += 1
        if cluster.bootstrap_shard_map.shard_for(oid).shard_id == shard_id:
            result.append(oid)
    return result


def test_plan_no_moves_when_balanced():
    sim, cluster = sharded_cluster()
    rebalancer = Rebalancer(cluster)
    # Equal synthetic load on both shards' primaries.
    for shard_id in (0, 1):
        primary = cluster.nodes[cluster.bootstrap_shard_map.replica_set(shard_id).primary]
        primary.object_load = {f"{'a'*31}{shard_id}": 100}
    assert rebalancer.plan_moves() == []


def test_plan_moves_hottest_from_busiest():
    sim, cluster = sharded_cluster()
    targets = objects_on_shard(cluster, 0, count=3)
    primary0 = cluster.nodes[cluster.bootstrap_shard_map.replica_set(0).primary]
    primary0.object_load = {
        str(targets[0]): 500,
        str(targets[1]): 50,
        str(targets[2]): 10,
    }
    rebalancer = Rebalancer(cluster, max_moves_per_sweep=1)
    moves = rebalancer.plan_moves()
    assert moves == [(targets[0], 0, 1)]


def test_bad_threshold_rejected():
    sim, cluster = sharded_cluster()
    with pytest.raises(ValueError):
        Rebalancer(cluster, imbalance_threshold=1.0)


def test_rebalancer_migrates_hot_object_under_real_load():
    sim, cluster = sharded_cluster(seed=43)
    hot = objects_on_shard(cluster, 0, count=1)[0]
    rebalancer = Rebalancer(cluster, interval_ms=30.0, max_moves_per_sweep=1)
    rebalancer.start()
    client = cluster.client("hammer", request_timeout_ms=50.0)

    def load():
        while sim.now < 200.0:
            yield from client.invoke(hot, "increment", 1)

    process = sim.process(load())
    sim.run_until_triggered(process, limit=600_000)
    rebalancer.stop()

    assert rebalancer.stats.migrations >= 1
    _epoch, shard_map = cluster.current_config()
    assert shard_map.shard_for(hot).shard_id == 1
    # The object still works and lost nothing.
    final = cluster.run_invoke(client, hot, "read")
    completed = len([m for _l, m in client.completions if m == "increment"])
    assert final == completed


def test_load_counters_decay():
    sim, cluster = sharded_cluster(seed=44)
    node = cluster.nodes["store-0"]
    node.object_load = {"x" * 32: 8, "y" * 32: 1}
    rebalancer = Rebalancer(cluster)
    rebalancer._decay_counters()
    assert node.object_load == {"x" * 32: 4}


def test_sweeps_counted():
    sim, cluster = sharded_cluster(seed=45)
    rebalancer = Rebalancer(cluster, interval_ms=20.0)
    rebalancer.start()
    sim.run(until=sim.now + 100.0)
    rebalancer.stop()
    assert rebalancer.stats.sweeps >= 4
