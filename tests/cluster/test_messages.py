"""Unit tests for message types and wire-size estimation."""

from repro.cluster.messages import (
    ClientReply,
    ClientRequest,
    CoordCommand,
    Heartbeat,
    MigrateObject,
    ReplicateAck,
    ReplicateWrites,
    estimate_size,
)
from repro.core import ObjectId

OID = ObjectId.from_name("msg-test")


def test_estimate_size_primitives():
    assert estimate_size(None) == 8
    assert estimate_size(True) == 8
    assert estimate_size(3.14) == 8
    assert estimate_size(b"12345") == 5
    assert estimate_size("abc") == 3


def test_estimate_size_containers_grow():
    assert estimate_size([1, 2, 3]) > estimate_size([1])
    assert estimate_size({"k": "v"}) > estimate_size({})


def test_estimate_size_unknown_object_defaults():
    class Thing:
        pass

    assert estimate_size(Thing()) == 64


def test_request_size_includes_args():
    small = ClientRequest("r1", "c", OID, "m", (), 1)
    big = ClientRequest("r2", "c", OID, "m", ("x" * 500,), 1)
    assert big.size() > small.size() + 400


def test_reply_size_includes_value_and_error():
    ok = ClientReply("r", True, value="v" * 100)
    err = ClientReply("r", False, error="e" * 50)
    assert ok.size() > 100
    assert err.size() > 50


def test_replicate_writes_size_sums_batches():
    message = ReplicateWrites(0, 1, 1, [b"x" * 10, b"y" * 20], "p")
    assert message.size() == 48 + 30
    assert ReplicateAck(0, 1, "b").size() == 32


def test_heartbeat_and_command_sizes():
    assert Heartbeat("n", 0.0).size() == 24
    command = CoordCommand("c#1", "move_object", {"object_id": str(OID)})
    assert command.size() > 48


def test_migrate_object_size_sums_entries():
    message = MigrateObject(OID, [(b"k" * 4, b"v" * 6)], 1, sender="m")
    assert message.size() == 32 + 10
