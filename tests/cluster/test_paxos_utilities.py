"""Small PaxosNode utility behaviours not covered by the protocol tests."""

from repro.cluster.paxos import PaxosNode
from repro.sim import ConstantLatency, Network, Simulation


def solo_node():
    sim = Simulation(seed=1)
    net = Network(sim, latency=ConstantLatency(0.1))
    net.add_host("p0")
    node = PaxosNode(sim, net, "p0", ["p0"])

    def serve():
        while True:
            message = yield net.host("p0").recv()
            node.handle(message.payload)

    sim.process(serve())
    return sim, node


def test_single_node_quorum_is_one():
    _sim, node = solo_node()
    assert node.quorum == 1


def test_decided_value_and_first_undecided_slot():
    sim, node = solo_node()
    assert node.decided_value(0) is None
    assert node.first_undecided_slot() == 0
    process = sim.process(node.propose(0, "v0"))
    sim.run_until_triggered(process, limit=1000)
    assert node.decided_value(0) == "v0"
    assert node.is_decided(0)
    assert node.first_undecided_slot() == 1


def test_sparse_decisions_do_not_advance_first_undecided():
    sim, node = solo_node()
    process = sim.process(node.propose(2, "later"))
    sim.run_until_triggered(process, limit=1000)
    assert node.is_decided(2)
    assert node.first_undecided_slot() == 0  # slots 0,1 still open


def test_in_order_delivery_waits_for_gaps():
    sim, node = solo_node()
    delivered = []
    node.on_decide = lambda slot, value: delivered.append((slot, value))
    # Learn slot 1 before slot 0: delivery must hold back.
    node._learn(1, "b")
    assert delivered == []
    node._learn(0, "a")
    assert delivered == [(0, "a"), (1, "b")]


def test_duplicate_learn_ignored():
    sim, node = solo_node()
    delivered = []
    node.on_decide = lambda slot, value: delivered.append((slot, value))
    node._learn(0, "x")
    node._learn(0, "y")  # duplicate decide (retransmission)
    assert delivered == [(0, "x")]
    assert node.decided_value(0) == "x"


def test_non_paxos_message_not_handled():
    _sim, node = solo_node()
    assert node.handle("not a paxos message") is False
