"""Cross-layer integration: durable cluster nodes, and chaos (message loss).

The paper's LambdaStore persists through LevelDB; here the cluster runs
with each node's storage on the real LSM store, and data survives a full
cluster restart.  The chaos tests inject random message loss on the live
request path and verify correctness is unaffected (only latency).
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.core import ObjectId
from repro.core.linearizability import check_linearizable
from repro.sim import Simulation

from tests.cluster.conftest import build_cluster, counter_type, run_ops


def durable_cluster(tmp_path, seed=1):
    sim = Simulation(seed=seed)
    cluster = Cluster(
        sim, ClusterConfig(seed=seed, durable_dir=str(tmp_path / "cluster"))
    )
    cluster.register_type(counter_type())
    cluster.start()
    return sim, cluster


def test_durable_cluster_serves_requests(tmp_path):
    sim, cluster = durable_cluster(tmp_path)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    assert cluster.run_invoke(client, oid, "increment", 5) == 5
    assert cluster.run_invoke(client, oid, "read") == 5
    cluster.close()


def test_durable_cluster_survives_full_restart(tmp_path):
    oid = ObjectId.from_name("durable-counter")
    sim, cluster = durable_cluster(tmp_path)
    client = cluster.client("c0")
    cluster.create_object("Counter", object_id=oid)
    for _ in range(7):
        cluster.run_invoke(client, oid, "increment", 1)
    cluster.close()

    # A brand-new simulation + cluster over the same directories: every
    # node recovers its state from WAL/SSTables.
    sim2 = Simulation(seed=2)
    cluster2 = Cluster(
        sim2, ClusterConfig(seed=2, durable_dir=str(tmp_path / "cluster"))
    )
    cluster2.register_type(counter_type())
    cluster2.start()
    # Re-register the object's type mapping for client routing.
    cluster2._object_types[str(oid)] = "Counter"
    client2 = cluster2.client("c1")
    assert cluster2.run_invoke(client2, oid, "read") == 7
    assert cluster2.run_invoke(client2, oid, "increment", 1) == 8
    cluster2.close()


def test_backups_persist_replicated_writes(tmp_path):
    sim, cluster = durable_cluster(tmp_path, seed=3)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 9)
    sim.run(until=sim.now + 5)
    from repro.core import keyspace

    key = keyspace.value_key(oid, "count")
    for node in cluster.nodes.values():
        assert node.runtime.storage.get(key) is not None
    cluster.close()


# -- chaos: random message loss ------------------------------------------------


@pytest.mark.parametrize("drop", [0.05, 0.15])
def test_increments_correct_under_message_loss(drop):
    sim, cluster = build_cluster(seed=17)
    cluster.net.drop_probability = drop
    oid = cluster.create_object("Counter")
    clients = [cluster.client(f"c{i}", request_timeout_ms=40.0) for i in range(6)]
    ops = [(client, oid, "increment", (1,)) for client in clients]
    results = run_ops(sim, cluster, ops, limit_ms=600_000)
    cluster.net.drop_probability = 0.0
    final = cluster.run_invoke(clients[0], oid, "read")
    # Lost replies cause client retries; at-most-once on the primary
    # dedupes them, so the counter equals the number of client operations.
    assert final == len(clients)
    assert sorted(results) == list(range(1, 7))


def test_linearizable_history_under_message_loss():
    sim, cluster = build_cluster(seed=19)
    cluster.net.drop_probability = 0.1
    oid = cluster.create_object("Counter")
    from repro.core.linearizability import History

    history = History()
    clients = [cluster.client(f"c{i}", request_timeout_ms=40.0) for i in range(4)]

    def load(client, count):
        rng = sim.rng(f"chaos.{client.name}")
        for _ in range(count):
            yield sim.timeout(rng.uniform(0, 1.0))
            kind = "increment" if rng.random() < 0.5 else "read"
            op = history.begin(client.name, kind, "counter", (1,) if kind == "increment" else (), sim.now)
            if kind == "increment":
                value = yield from client.invoke(oid, "increment", 1)
            else:
                value = yield from client.invoke(oid, "read")
            history.finish(op, sim.now, value)

    processes = [sim.process(load(client, 3)) for client in clients]
    sim.run_until_triggered(sim.all_of(processes), limit=600_000)

    def apply_fn(state, op):
        if op.kind == "increment":
            return op.result == state + 1, state + 1
        return op.result == state, state

    assert check_linearizable(history, 0, apply_fn)
