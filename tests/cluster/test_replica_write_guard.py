"""Read-only transitivity + the replica commit guard.

A read-only invocation may only nest read-only calls; a hidden mutating
dispatch would otherwise fork replica state (read-only methods execute at
any replica).  Enforced at the runtime level and backstopped by a commit
guard on cluster nodes.
"""

import pytest

from repro.cluster.messages import ClientReply, ClientRequest
from repro.core import LocalRuntime, ObjectType, ValueField, method, readonly_method
from repro.errors import InvocationError

from tests.cluster.conftest import build_cluster


def sneaky_type():
    """A read-only method that nested-dispatches a *mutating* call."""

    def covert_read(self):
        self.get_object(self.self_id()).bump()
        return self.get("v")

    def covert_read_remote(self, other):
        self.get_object(other).bump()
        return True

    def legit_read(self):
        # Read-only nesting read-only: allowed.
        return self.get_object(self.self_id()).read()

    def bump(self):
        self.set("v", (self.get("v") or 0) + 1)
        return self.get("v")

    def read(self):
        return self.get("v") or 0

    return ObjectType(
        "Sneaky",
        fields=[ValueField("v", default=0)],
        methods=[
            readonly_method(covert_read),
            readonly_method(covert_read_remote),
            readonly_method(legit_read),
            method(bump),
            readonly_method(read),
        ],
    )


def test_local_runtime_rejects_readonly_to_mutating():
    runtime = LocalRuntime()
    runtime.register_type(sneaky_type())
    oid = runtime.create_object("Sneaky")
    with pytest.raises(InvocationError, match="read-only"):
        runtime.invoke(oid, "covert_read")
    assert runtime.invoke(oid, "read") == 0  # nothing committed


def test_local_runtime_allows_readonly_to_readonly():
    runtime = LocalRuntime()
    runtime.register_type(sneaky_type())
    oid = runtime.create_object("Sneaky")
    assert runtime.invoke(oid, "legit_read") == 0


@pytest.fixture()
def cluster_with_sneaky():
    sim, cluster = build_cluster(seed=101)
    cluster.register_type(sneaky_type())
    oid = cluster.create_object("Sneaky")
    return sim, cluster, oid


def probe(sim, cluster, oid, method_name, target, args=(), name="probe"):
    host = cluster.net.add_host(name)
    request = ClientRequest(
        f"{name}#1", name, oid, method_name, args, epoch=1, readonly_hint=True
    )
    cluster.net.send(name, target, request, size_bytes=request.size())
    sim.run(until=sim.now + 20)
    return [m.payload for m in host.inbox.drain() if isinstance(m.payload, ClientReply)]


def test_covert_mutation_refused_at_backup(cluster_with_sneaky):
    sim, cluster, oid = cluster_with_sneaky
    replies = probe(sim, cluster, oid, "covert_read", "store-1")
    assert replies and not replies[0].ok
    assert "read-only" in replies[0].error
    from repro.core import keyspace

    # The backup still holds the creation-time default; nothing committed.
    assert cluster.node("store-1").runtime.storage.get(keyspace.value_key(oid, "v")) == b"0"


def test_covert_mutation_refused_at_primary_too(cluster_with_sneaky):
    sim, cluster, oid = cluster_with_sneaky
    replies = probe(sim, cluster, oid, "covert_read", "store-0", name="probe2")
    assert replies and not replies[0].ok


def test_replicas_stay_identical_after_attempts(cluster_with_sneaky):
    sim, cluster, oid = cluster_with_sneaky
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "bump")
    probe(sim, cluster, oid, "covert_read", "store-2", name="probe3")
    from repro.core import keyspace

    key = keyspace.value_key(oid, "v")
    values = {node.runtime.storage.get(key) for node in cluster.nodes.values()}
    assert len(values) == 1  # nothing forked


def test_remote_covert_mutation_refused_in_sharded_cluster():
    sim, cluster = build_cluster(seed=102, num_storage_nodes=4, num_shards=2)
    cluster.register_type(sneaky_type())
    a = cluster.create_object("Sneaky")
    b = None
    while b is None:
        candidate = cluster.create_object("Sneaky")
        if (
            cluster.bootstrap_shard_map.shard_for(candidate).shard_id
            != cluster.bootstrap_shard_map.shard_for(a).shard_id
        ):
            b = candidate
    # Read-only on a's replica set trying to mutate b remotely.
    target = cluster.bootstrap_shard_map.shard_for(a).primary
    replies = probe(sim, cluster, a, "covert_read_remote", target, args=(b,))
    assert replies and not replies[0].ok
    client = cluster.client("check")
    assert cluster.run_invoke(client, b, "read") == 0
