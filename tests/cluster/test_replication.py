"""Unit tests for primary/backup replication state machines."""

from repro.cluster.replication import BackupApplier, PrimaryReplicationLog
from repro.core.storage import MemoryBackend
from repro.kvstore.batch import WriteBatch


def encoded(key, value):
    batch = WriteBatch()
    batch.put(key, value)
    return batch.encode()


def make_applier():
    backend = MemoryBackend()
    return BackupApplier(0, backend.apply), backend


def test_primary_assigns_increasing_sequences():
    log = PrimaryReplicationLog(0)
    s1 = log.next_sequence([b"a"])
    s2 = log.next_sequence([b"b"])
    assert (s1, s2) == (1, 2)
    assert log.last_assigned == 2


def test_primary_tracks_acks():
    log = PrimaryReplicationLog(0)
    sequence = log.next_sequence([b"x"])
    log.record_ack(sequence, "b1")
    log.record_ack(sequence, "b2")
    assert log.acked_by(sequence) == {"b1", "b2"}


def test_primary_forget_through_drops_state():
    log = PrimaryReplicationLog(0)
    for _ in range(3):
        log.next_sequence([b"x"])
    log.forget_through(2)
    assert log.acked_by(1) == set()
    assert 3 in log.history and 1 not in log.history


def applied_sequences(applied):
    return [sequence for sequence, _batches in applied]


def test_backup_applies_in_order():
    applier, backend = make_applier()
    assert applied_sequences(applier.receive(1, [encoded(b"k1", b"v1")])) == [1]
    assert applied_sequences(applier.receive(2, [encoded(b"k2", b"v2")])) == [2]
    assert backend.get(b"k1") == b"v1"
    assert backend.get(b"k2") == b"v2"


def test_backup_buffers_out_of_order():
    applier, backend = make_applier()
    assert applier.receive(2, [encoded(b"k2", b"v2")]) == []
    assert backend.get(b"k2") is None
    assert applier.pending_count == 1
    assert applied_sequences(applier.receive(1, [encoded(b"k1", b"v1")])) == [1, 2]
    assert backend.get(b"k2") == b"v2"


def test_receive_reports_batches_of_drained_sequences():
    # The caller needs the *batches* of every applied sequence — including
    # ones drained from the out-of-order buffer — to invalidate caches.
    applier, _backend = make_applier()
    second = encoded(b"k2", b"v2")
    first = encoded(b"k1", b"v1")
    assert applier.receive(2, [second]) == []
    assert applier.receive(1, [first]) == [(1, [first]), (2, [second])]


def test_backup_acks_duplicates_without_reapplying():
    applier, backend = make_applier()
    applier.receive(1, [encoded(b"k", b"v1")])
    backend.apply(_overwrite(b"k", b"local"))
    assert applier.receive(1, [encoded(b"k", b"v1")]) == [(1, [])]
    assert backend.get(b"k") == b"local"  # duplicate did not reapply


def test_multiple_batches_per_sequence():
    applier, backend = make_applier()
    applier.receive(1, [encoded(b"a", b"1"), encoded(b"b", b"2")])
    assert backend.get(b"a") == b"1"
    assert backend.get(b"b") == b"2"


def test_stats():
    applier, _backend = make_applier()
    applier.receive(2, [encoded(b"x", b"1")])
    applier.receive(1, [encoded(b"y", b"2")])
    assert applier.stats.applied == 2
    assert applier.stats.buffered_out_of_order == 1


def _overwrite(key, value):
    batch = WriteBatch()
    batch.put(key, value)
    return batch
