"""Fault tolerance: primary/backup failures, coordinator reconfiguration."""

import pytest

from repro.core import ObjectId

from tests.cluster.conftest import build_cluster


def test_backup_failure_does_not_block_writes():
    sim, cluster = build_cluster(seed=11)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 1)
    # Kill a backup; the primary's ack wait must unblock once the
    # coordinator removes the dead backup from the replica set.
    cluster.crash_node("store-1")
    assert cluster.run_invoke(client, oid, "increment", 1) == 2
    epoch, shard_map = cluster.current_config()
    assert epoch > 1
    assert "store-1" not in shard_map.replica_sets[0].members


def test_primary_failover_promotes_backup():
    sim, cluster = build_cluster(seed=12)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    for _ in range(3):
        cluster.run_invoke(client, oid, "increment", 1)
    cluster.crash_node("store-0")
    # The client times out, refreshes config, and lands on the new primary.
    assert cluster.run_invoke(client, oid, "increment", 1) == 4
    epoch, shard_map = cluster.current_config()
    assert shard_map.replica_sets[0].primary == "store-1"
    assert epoch > 1


def test_no_committed_writes_lost_on_failover():
    sim, cluster = build_cluster(seed=13)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    for expected in range(1, 11):
        assert cluster.run_invoke(client, oid, "increment", 1) == expected
    cluster.crash_node("store-0")
    # Every acknowledged write must be visible at the promoted primary.
    assert cluster.run_invoke(client, oid, "read") == 10


def test_reads_continue_during_primary_outage():
    sim, cluster = build_cluster(seed=14)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 7)
    cluster.crash_node("store-0")
    # Replica reads keep working (client may need a retry or two if it
    # routes to the dead node first).
    assert cluster.run_invoke(client, oid, "read") == 7


def test_sequential_failures_until_single_node():
    sim, cluster = build_cluster(seed=15)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    cluster.run_invoke(client, oid, "increment", 1)
    cluster.crash_node("store-2")
    assert cluster.run_invoke(client, oid, "increment", 1) == 2
    cluster.crash_node("store-0")
    assert cluster.run_invoke(client, oid, "increment", 1) == 3
    epoch, shard_map = cluster.current_config()
    assert shard_map.replica_sets[0].members == ["store-1"]


def test_coordinator_replica_crash_is_tolerated():
    sim, cluster = build_cluster(seed=16)
    oid = cluster.create_object("Counter")
    client = cluster.client("c0")
    # Crash a coordinator *follower*: Paxos still has a quorum.
    cluster.coordinators["coord-2"].crash()
    cluster.crash_node("store-1")
    assert cluster.run_invoke(client, oid, "increment", 1) == 1
    epoch, _ = cluster.current_config()
    assert epoch > 1


def test_failure_detection_without_traffic():
    sim, cluster = build_cluster(seed=17)
    cluster.crash_node("store-2")
    sim.run(until=sim.now + 500)
    epoch, shard_map = cluster.current_config()
    assert epoch > 1
    assert "store-2" not in shard_map.replica_sets[0].members
