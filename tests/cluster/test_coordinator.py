"""Tests for the coordination service state machine and leadership."""

from repro.cluster.coordinator import CoordinatorState
from repro.cluster.messages import CoordCommand
from repro.cluster.shard import ReplicaSet, ShardMap
from repro.core import ObjectId

from tests.cluster.conftest import build_cluster


def base_map():
    return ShardMap(
        replica_sets=[
            ReplicaSet(0, "a", ["b", "c"]),
            ReplicaSet(1, "d", ["e"]),
        ]
    )


def fresh_state():
    state = CoordinatorState()
    state.apply(CoordCommand("init#1", "set_config", {"shard_map": base_map()}))
    return state


def test_set_config_bumps_epoch():
    state = fresh_state()
    assert state.epoch == 1
    assert state.shard_map.replica_sets[0].primary == "a"


def test_report_failure_of_backup_removes_it():
    state = fresh_state()
    state.apply(CoordCommand("c#2", "report_failure", {"node": "b"}))
    assert state.epoch == 2
    assert state.shard_map.replica_sets[0].members == ["a", "c"]


def test_report_failure_of_primary_promotes_backup():
    state = fresh_state()
    state.apply(CoordCommand("c#2", "report_failure", {"node": "a"}))
    assert state.shard_map.replica_sets[0].primary == "b"
    assert state.shard_map.replica_sets[0].backups == ["c"]


def test_duplicate_command_applies_once():
    state = fresh_state()
    command = CoordCommand("c#2", "report_failure", {"node": "b"})
    state.apply(command)
    result = state.apply(command)
    assert result.get("duplicate")
    assert state.epoch == 2


def test_repeated_failure_report_is_idempotent():
    state = fresh_state()
    state.apply(CoordCommand("c#2", "report_failure", {"node": "b"}))
    state.apply(CoordCommand("c#3", "report_failure", {"node": "b"}))
    assert state.epoch == 2  # second report changed nothing


def test_move_object_sets_override():
    state = fresh_state()
    oid = ObjectId.from_name("obj")
    state.apply(CoordCommand("c#2", "move_object", {"object_id": oid, "to_shard": 1}))
    assert state.shard_map.shard_for(oid).shard_id == 1


def test_add_backup_rejoins_node():
    state = fresh_state()
    state.apply(CoordCommand("c#2", "report_failure", {"node": "b"}))
    state.apply(CoordCommand("c#3", "add_backup", {"shard_id": 0, "node": "b"}))
    assert "b" in state.shard_map.replica_sets[0].members
    assert "b" not in state.dead_nodes


def test_unknown_command_reports_error():
    state = fresh_state()
    result = state.apply(CoordCommand("c#2", "frobnicate", {}))
    assert "error" in result


def test_last_survivor_stays_primary():
    state = fresh_state()
    state.apply(CoordCommand("c#2", "report_failure", {"node": "e"}))
    state.apply(CoordCommand("c#3", "report_failure", {"node": "d"}))
    # Nobody left to promote: the dead primary stays on record.
    assert state.shard_map.replica_sets[1].primary == "d"


def test_leader_is_first_alive_coordinator():
    sim, cluster = build_cluster(seed=31)
    assert cluster.leader_coordinator().name == "coord-0"
    cluster.coordinators["coord-0"].crash()
    assert cluster.leader_coordinator().name == "coord-1"


def test_config_changes_reach_storage_nodes():
    sim, cluster = build_cluster(seed=32)
    cluster.crash_node("store-2")
    sim.run(until=sim.now + 500)
    for name in ("store-0", "store-1"):
        node = cluster.node(name)
        assert node.epoch > 1
        assert "store-2" not in node.shard_map.replica_sets[0].members
