"""Regression: concurrent migrations must not lose each other's wake-ups.

The pre-RPC ``Migrator`` kept a single ``_mail_signal`` slot: when two
``migrate()`` processes awaited concurrently, the second overwrote the
first's signal, so the first's reply only surfaced at its deadline rescan
(or was lost entirely if the reply landed after the deadline).  The
``RpcStub`` waiter list wakes every parked waiter per delivery.
"""

from repro.chaos.workload import register_type
from repro.cluster import Cluster, ClusterConfig
from repro.cluster.migration import Migrator
from repro.sim import Simulation


def build_cluster():
    sim = Simulation(seed=11)
    cluster = Cluster(
        sim, ClusterConfig(seed=11, num_storage_nodes=4, num_shards=2)
    )
    cluster.register_type(register_type())
    return sim, cluster


def test_concurrent_migrations_complete_promptly():
    sim, cluster = build_cluster()
    # Two objects that both live on shard 0, moved concurrently to shard 1.
    oids = []
    while len(oids) < 2:
        oid = cluster.create_object("Register", initial={"value": 0})
        _epoch, shard_map = cluster.current_config()
        if shard_map.shard_for(oid).shard_id == 0:
            oids.append(oid)
    cluster.start()
    migrator = Migrator(cluster)
    done = []

    def run_one(oid):
        yield from migrator.migrate(oid, to_shard=1)
        done.append((str(oid), sim.now))

    started = sim.now
    for oid in oids:
        sim.process(run_one(oid))
    sim.run(until=started + 5_000.0)

    assert len(done) == 2
    _epoch, shard_map = cluster.current_config()
    for oid in oids:
        assert shard_map.shard_for(oid).shard_id == 1
    # Both finish in a handful of round trips — far inside one 50 ms
    # deadline window.  The old single-signal Migrator stranded one of
    # the two interleaved exchanges until its deadline rescan.
    deadline = cluster.config.rpc_default_deadline_ms
    for _oid, finished_at in done:
        assert finished_at - started < deadline

    # Writes through refreshed routing still land after the flip.
    client = cluster.client("c")
    for oid in oids:
        assert cluster.run_invoke(client, oid, "write", "post-move") == "post-move"
