"""RpcStub: deadlines, retries, waiter wake-ups, and auto-metrics."""

from dataclasses import dataclass

from repro.obs.registry import MetricsRegistry
from repro.rpc import RetryPolicy, RpcEndpoint, RpcStub
from repro.sim import ConstantLatency, Network, Simulation


@dataclass
class Ping:
    seq: int

    def size(self) -> int:
        return 16


@dataclass
class Pong:
    seq: int

    def size(self) -> int:
        return 16


def build(latency_ms: float = 1.0, registry=None):
    sim = Simulation(seed=1)
    net = Network(sim, latency=ConstantLatency(latency_ms))
    stub = RpcStub(sim, net, "client", default_deadline_ms=20.0, registry=registry)
    return sim, net, stub


def echo_server(sim, net, name="server", drop_first=0):
    """An endpoint that pongs every ping, optionally dropping the first N."""
    endpoint = RpcEndpoint(sim, net, name)
    state = {"seen": 0}

    def handle(ping):
        state["seen"] += 1
        if state["seen"] <= drop_first:
            return
        endpoint.send("client", Pong(ping.seq))

    endpoint.on(Ping, handle)
    endpoint.start()
    return state


def test_call_returns_matching_reply():
    sim, net, stub = build()
    echo_server(sim, net)
    got = []

    def caller():
        reply = yield from stub.call(
            "server", Ping(7), lambda p: isinstance(p, Pong) and p.seq == 7
        )
        got.append((reply, sim.now))

    sim.process(caller())
    sim.run()
    assert got[0][0] == Pong(7)
    assert got[0][1] < 20.0  # well before the deadline


def test_deadline_expiry_returns_none():
    sim, net, stub = build()
    # no server host even exists: the send is dropped, the call times out
    net.add_host("server")
    got = []

    def caller():
        reply = yield from stub.call("server", Ping(1), lambda p: isinstance(p, Pong))
        got.append((reply, sim.now))

    sim.process(caller())
    sim.run()
    assert got == [(None, 20.0)]  # exactly the default deadline


def test_retry_recovers_from_lost_request():
    registry = MetricsRegistry()
    sim, net, stub = build(registry=registry)
    state = echo_server(sim, net, drop_first=1)
    got = []

    def caller():
        reply = yield from stub.call(
            "server",
            Ping(3),
            lambda p: isinstance(p, Pong) and p.seq == 3,
            retry=RetryPolicy(max_attempts=3),
        )
        got.append(reply)

    sim.process(caller())
    sim.run()
    assert got == [Pong(3)]
    assert state["seen"] == 2
    labels = {"node": "client", "method": "Ping", "peer": "server"}
    assert registry.get("rpc_calls", labels).value == 1
    assert registry.get("rpc_retries", labels).value == 1
    assert registry.get("rpc_timeouts", labels).value == 1
    assert registry.get("rpc_call_ms", labels).count == 1


def test_should_retry_and_on_retry_drive_the_schedule():
    sim, net, stub = build()
    endpoint = RpcEndpoint(sim, net, "server")
    endpoint.on(Ping, lambda ping: endpoint.send("client", Pong(ping.seq)))
    endpoint.start()
    retries_seen = []

    def caller():
        # Pongs with seq < 2 are "retryable errors"; the payload callable
        # bumps seq per attempt, so the third attempt succeeds.
        reply = yield from stub.call(
            "server",
            lambda attempt: Ping(attempt),
            lambda p: isinstance(p, Pong),
            retry=RetryPolicy(max_attempts=5),
            should_retry=lambda pong: pong.seq < 2,
            on_retry=lambda attempt, pong: retries_seen.append((attempt, pong.seq)),
        )
        return reply

    process = sim.process(caller())
    sim.run()
    assert process.value == Pong(2)
    assert retries_seen == [(0, 0), (1, 1)]


def test_generator_on_retry_runs_before_next_attempt():
    """``on_retry`` may be a generator (e.g. the cluster client's config
    refresh round trip); the stub must drive it to completion — including
    its timeouts — before rebuilding the next attempt's payload."""
    sim, net, stub = build()
    endpoint = RpcEndpoint(sim, net, "server")
    endpoint.on(Ping, lambda ping: endpoint.send("client", Pong(ping.seq)))
    endpoint.start()
    state = {"config": 0}
    hook_done_at = []

    def on_retry(_attempt, pong):
        # Simulate a refresh: only after a simulated round trip does the
        # shared config advance past the retry threshold.
        yield sim.timeout(3.0)
        state["config"] = pong.seq + 10
        hook_done_at.append(sim.now)

    def caller():
        return (
            yield from stub.call(
                "server",
                lambda attempt: Ping(state["config"] + attempt),
                lambda p: isinstance(p, Pong),
                retry=RetryPolicy(max_attempts=5),
                should_retry=lambda pong: pong.seq < 10,
                on_retry=on_retry,
            )
        )

    process = sim.process(caller())
    sim.run()
    # Attempt 0 sent Ping(0) -> Pong(0), retryable.  The generator hook
    # ran to completion (config = 10) BEFORE attempt 1 built its payload,
    # so attempt 1 sent Ping(11) and was accepted.  If the stub had only
    # invoked the hook without driving the generator, config would still
    # be 0 and every attempt would exhaust on seq < 10.
    assert process.value == Pong(11)
    assert hook_done_at and hook_done_at[0] >= 3.0


def test_exhausted_retries_return_last_reply():
    sim, net, stub = build()
    endpoint = RpcEndpoint(sim, net, "server")
    endpoint.on(Ping, lambda ping: endpoint.send("client", Pong(-1)))
    endpoint.start()

    def caller():
        return (
            yield from stub.call(
                "server",
                Ping(0),
                lambda p: isinstance(p, Pong),
                retry=RetryPolicy(max_attempts=3),
                should_retry=lambda pong: True,  # never satisfied
            )
        )

    process = sim.process(caller())
    sim.run()
    assert process.value == Pong(-1)  # the caller classifies, the stub never raises


def test_duplicate_replies_are_suppressed_by_predicate_consumption():
    """Two identical pongs: the first satisfies the call, the stale second
    stays unmatched and is dropped by a discarding stub's next scan."""
    sim = Simulation(seed=1)
    net = Network(sim, latency=ConstantLatency(1.0))
    stub = RpcStub(
        sim, net, "client", default_deadline_ms=20.0, discard_unmatched=True
    )
    endpoint = RpcEndpoint(sim, net, "server")

    def handle(ping):
        endpoint.send("client", Pong(ping.seq))
        endpoint.send("client", Pong(ping.seq))  # duplicate (e.g. resent reply)

    endpoint.on(Ping, handle)
    endpoint.start()
    got = []

    def caller():
        first = yield from stub.call(
            "server", Ping(1), lambda p: isinstance(p, Pong) and p.seq == 1
        )
        # The duplicate Pong(1) must not satisfy this second exchange.
        second = yield from stub.call(
            "server", Ping(2), lambda p: isinstance(p, Pong) and p.seq == 2
        )
        got.append((first, second))

    sim.process(caller())
    sim.run()
    assert got == [(Pong(1), Pong(2))]
    # The stale Pong(1) duplicate was discarded by the second call's scan;
    # only the not-yet-scanned Pong(2) duplicate remains.
    assert stub._mail == [Pong(2)]


def test_stale_signal_regression_concurrent_waiters():
    """The bug the waiter list fixes: with the old single-signal slot, a
    second concurrent awaiter overwrote the first's signal, so the first
    waiter's message only surfaced at its *deadline* rescan.  Both
    waiters must wake at delivery time."""
    sim = Simulation(seed=1)
    net = Network(sim, latency=ConstantLatency(1.0))
    stub = RpcStub(sim, net, "client", default_deadline_ms=100.0)
    net.add_host("server")
    woke = {}

    def waiter(tag, seq):
        reply = yield from stub.await_message(
            lambda p: isinstance(p, Pong) and p.seq == seq
        )
        woke[tag] = (reply, sim.now)

    sim.process(waiter("first", 1))
    sim.process(waiter("second", 2))
    # Deliver the *first* waiter's message; the old code would have woken
    # only the most recent waiter ("second"), stranding "first" until its
    # 100 ms deadline.
    net.send("server", "client", Pong(1), size_bytes=16)
    sim.run(until=10.0)
    assert woke["first"][0] == Pong(1)
    assert woke["first"][1] < 5.0  # delivery time, not the 100 ms deadline
    assert "second" not in woke  # still parked, signal intact
    net.send("server", "client", Pong(2), size_bytes=16)
    sim.run(until=20.0)
    assert woke["second"][0] == Pong(2)
    assert woke["second"][1] < 100.0


def test_timed_out_waiter_leaves_the_waiter_list():
    """After a timeout wake the waiter must deregister — the stale-signal
    half of the fix: the next delivery wakes only live waiters."""
    sim = Simulation(seed=1)
    net = Network(sim, latency=ConstantLatency(1.0))
    stub = RpcStub(sim, net, "client", default_deadline_ms=5.0)
    net.add_host("server")
    got = []

    def waiter():
        reply = yield from stub.await_message(lambda p: False)
        got.append(reply)

    sim.process(waiter())
    sim.run()
    assert got == [None]
    assert stub._waiters == []


def test_zero_delay_retries_floor_after_the_first_immediate_one():
    """A zero-delay policy retrying zero-time attempts must not spin the
    now-lane: the first immediate retry is free (the historical leader-
    hint-chasing shape), every later consecutive one advances time by the
    backoff floor."""
    sim = Simulation(seed=1)
    # Zero latency AND infinite bandwidth: every attempt completes at the
    # instant it was sent, the case the floor exists for.
    net = Network(sim, latency=ConstantLatency(0.0), bandwidth_mbps=float("inf"))
    stub = RpcStub(sim, net, "client", default_deadline_ms=20.0)
    endpoint = RpcEndpoint(sim, net, "server")
    endpoint.on(Ping, lambda ping: endpoint.send("client", Pong(ping.seq)))
    endpoint.start()
    got = []

    def caller():
        # Pongs with seq < 3 are "retryable"; the payload callable bumps
        # seq per attempt, so the fourth attempt succeeds.
        reply = yield from stub.call(
            "server",
            lambda attempt: Ping(attempt),
            lambda p: isinstance(p, Pong),
            retry=RetryPolicy(max_attempts=4),
            should_retry=lambda p: p.seq < 3,
        )
        got.append((reply, sim.now))

    sim.process(caller())
    sim.run()
    reply, finished_at = got[0]
    assert reply == Pong(3)
    # attempt 0 -> 1 free, attempts 1 -> 2 and 2 -> 3 floored.
    expected = 2 * RpcStub.MIN_BACKOFF_FLOOR_MS
    assert abs(finished_at - expected) < 1e-9, finished_at


def test_retry_after_overrides_policy_delay_and_returns_on_exhaustion():
    """A RetryAfter matching the call's request_id always retries after
    the *server's* advice; when attempts run out, the RetryAfter itself
    comes back so the caller can classify the failure as overload."""
    from repro.rpc import RetryAfter

    sim, net, stub = build(latency_ms=1.0)
    endpoint = RpcEndpoint(sim, net, "server")
    mode = {"shed_first": 1, "request_id": "req-1", "advice_ms": 40.0}

    def handle(ping):
        if mode["shed_first"] > 0:
            mode["shed_first"] -= 1
            endpoint.send(
                "client",
                RetryAfter(mode["request_id"], mode["advice_ms"], server="server"),
            )
        else:
            endpoint.send("client", Pong(ping.seq))

    endpoint.on(Ping, handle)
    endpoint.start()
    got = []

    def caller():
        reply = yield from stub.call(
            "server",
            Ping(5),
            lambda p: isinstance(p, Pong) and p.seq == 5,
            retry=RetryPolicy(max_attempts=2),  # zero policy delay
            request_id="req-1",
        )
        got.append((reply, sim.now))

    sim.process(caller())
    sim.run()
    reply, finished_at = got[0]
    assert reply == Pong(5)
    # 2 ms round trip + the advised 40 ms + the second round trip: the
    # 40 ms sleep came from the server, not the (zero-delay) policy.
    assert finished_at >= 42.0

    def exhausted():
        reply = yield from stub.call(
            "server",
            Ping(6),
            lambda p: isinstance(p, Pong) and p.seq == 6,
            request_id="req-2",
        )
        got.append(reply)

    # Shed every remaining attempt: the single-attempt call exhausts.
    mode.update(shed_first=10_000, request_id="req-2", advice_ms=7.5)
    sim.process(exhausted())
    sim.run()
    last = got[-1]
    assert type(last) is RetryAfter
    assert last.retry_after_ms == 7.5
