"""Fixed-seed determinism guard for the RPC-layer migration.

Pins one fig1 cell ("Post", both variants) to byte-identical values —
report rows *and* total scheduled-event counts — captured immediately
before the hand-rolled mailboxes moved onto ``repro.rpc``.  Any change
to scheduling order, rng draw order, or message counts moves at least
one of these numbers.

If a later change *legitimately* alters scheduling (a new protocol
message, a reordered process), re-capture these constants in that PR and
say so in its description; an unexplained diff here is a determinism
regression.
"""

from dataclasses import replace

from repro.bench.calibration import preset
from repro.bench.harness import AGGREGATED, DISAGGREGATED, run_retwis

#: quick preset, shrunk so both runs stay a few seconds of wall clock
CAL = replace(preset("quick"), duration_ms=400.0, warmup_ms=50.0, num_clients=8)

#: aggregated re-captured for the lease-based replica-reads PR: read-only
#: requests now route to backups (new rng draws) and reads/writes carry
#: fences, legitimately moving the schedule.  disaggregated is untouched
#: by that path and kept from the repro.rpc migration capture.
GOLDEN = {
    AGGREGATED: {
        "completed": 894,
        "events_scheduled": 72917,
        "median_ms": 3.141919,
        "messages_delivered": 6395,
        "messages_sent": 6395,
        "p99_ms": 5.041397,
        "throughput": 2554.285714,
    },
    DISAGGREGATED: {
        "completed": 88,
        "events_scheduled": 32131,
        "median_ms": 34.332138,
        "messages_delivered": 194,
        "messages_sent": 194,
        "p99_ms": 54.389314,
        "throughput": 251.428571,
    },
}


def _run_cell(variant: str) -> dict:
    result = run_retwis(variant, "Post", CAL)
    report = result.report
    sim = result.platform.sim
    net = result.platform.net
    return {
        "completed": report.completed,
        "events_scheduled": sim.events_scheduled,
        "median_ms": round(report.median_ms, 6),
        "messages_delivered": net.stats.messages_delivered,
        "messages_sent": net.stats.messages_sent,
        "p99_ms": round(report.p99_ms, 6),
        "throughput": round(report.throughput_per_sec, 6),
    }


def test_fig1_post_cell_aggregated_is_byte_identical():
    assert _run_cell(AGGREGATED) == GOLDEN[AGGREGATED]


def test_fig1_post_cell_disaggregated_is_byte_identical():
    assert _run_cell(DISAGGREGATED) == GOLDEN[DISAGGREGATED]


def test_same_seed_runs_twice_identically():
    """The weaker invariant that must hold even across legitimate
    re-captures: two runs of the same cell in one process agree."""
    assert _run_cell(AGGREGATED) == _run_cell(AGGREGATED)
