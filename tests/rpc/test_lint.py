"""Tier-1 gate for the raw-``recv`` lint.

The CI lint job is advisory (``continue-on-error``), so the check that
keeps mailboxes behind :mod:`repro.rpc` must also run as an ordinary
test to actually block merges.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def test_no_raw_recv_outside_rpc_layer():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_raw_recv.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
