"""RpcEndpoint: typed dispatch, error replies, dedupe, and gating."""

from dataclasses import dataclass

from repro.obs.registry import MetricsRegistry
from repro.rpc import RpcEndpoint
from repro.sim import ConstantLatency, Network, Simulation


@dataclass
class Query:
    query_id: str
    reply_to: str
    boom: bool = False

    def size(self) -> int:
        return 32


@dataclass
class Answer:
    query_id: str
    ok: bool = True
    error: str = ""

    def size(self) -> int:
        return 32


@dataclass
class Other:
    def size(self) -> int:
        return 8


def build(registry=None, **endpoint_kwargs):
    sim = Simulation(seed=1)
    net = Network(sim, latency=ConstantLatency(1.0))
    endpoint = RpcEndpoint(sim, net, "server", registry=registry, **endpoint_kwargs)
    net.add_host("client")
    return sim, net, endpoint


def collect_client(sim, net, into):
    def pump():
        while True:
            message = yield net.host("client").recv()
            into.append(message.payload)

    sim.process(pump())


def test_typed_dispatch_inline_and_spawned():
    sim, net, endpoint = build()
    inline, spawned = [], []
    endpoint.on(Query, lambda q: inline.append(q.query_id))

    def handle_other(message):
        yield sim.timeout(1.0)
        spawned.append(sim.now)

    endpoint.on(Other, handle_other, spawn="bg")
    endpoint.start()
    net.send("client", "server", Query("q1", "client"), size_bytes=32)
    net.send("client", "server", Other(), size_bytes=8)
    sim.run()
    assert inline == ["q1"]
    assert len(spawned) == 1  # ran as its own process, 1.0 ms after delivery


def test_duplicate_registration_rejected():
    _sim, _net, endpoint = build()
    endpoint.on(Query, lambda q: None)
    try:
        endpoint.on(Query, lambda q: None)
    except ValueError as error:
        assert "duplicate handler" in str(error)
    else:
        raise AssertionError("second on(Query) must raise")


def test_on_rpc_sends_reply_and_error_reply():
    sim, net, endpoint = build()

    def handle(query):
        if query.boom:
            raise RuntimeError("kaboom")
        return Answer(query.query_id)

    endpoint.on_rpc(
        Query,
        handle,
        reply_to=lambda q: q.reply_to,
        make_error=lambda q, e: Answer(q.query_id, ok=False, error=str(e)),
    )
    endpoint.start()
    got = []
    collect_client(sim, net, got)
    net.send("client", "server", Query("good", "client"), size_bytes=32)
    net.send("client", "server", Query("bad", "client", boom=True), size_bytes=32)
    sim.run(until=50.0)
    assert got == [
        Answer("good"),
        Answer("bad", ok=False, error="kaboom"),
    ]  # the serve loop survived the raising handler


def test_on_rpc_without_error_factory_drops_silently():
    sim, net, endpoint = build()

    def handle(query):
        raise RuntimeError("kaboom")

    endpoint.on_rpc(Query, handle, reply_to=lambda q: q.reply_to)
    endpoint.start()
    got = []
    collect_client(sim, net, got)
    net.send("client", "server", Query("q", "client", boom=True), size_bytes=32)
    sim.run(until=50.0)
    assert got == []


def test_default_handler_and_unhandled_counter():
    registry = MetricsRegistry()
    sim, net, endpoint = build(registry=registry)
    consumed = []

    def default(payload):
        if isinstance(payload, Other):
            consumed.append(payload)
            return True
        return False

    endpoint.on_default(default)
    endpoint.start()
    net.send("client", "server", Other(), size_bytes=8)
    net.send("client", "server", Query("q", "client"), size_bytes=32)  # nobody takes it
    sim.run(until=50.0)
    assert len(consumed) == 1
    assert registry.get("rpc_unhandled", {"node": "server"}).value == 1


def test_gate_drops_messages_while_crashed():
    state = {"crashed": True}
    sim, net, endpoint = build(gate=lambda: state["crashed"])
    seen = []
    endpoint.on(Query, lambda q: seen.append(q.query_id))
    endpoint.start()
    net.send("client", "server", Query("while-down", "client"), size_bytes=32)
    sim.run(until=10.0)
    assert seen == []
    state["crashed"] = False
    net.send("client", "server", Query("while-up", "client"), size_bytes=32)
    sim.run(until=20.0)
    assert seen == ["while-up"]


def test_dedupe_table_and_gauges():
    registry = MetricsRegistry()
    sim, net, endpoint = build(registry=registry, dedupe_cap=2)
    executions = []

    def handle(query):
        cached = endpoint.dedupe.lookup(query.query_id)
        if cached is not None:
            endpoint.send(query.reply_to, cached)
            return
        executions.append(query.query_id)
        answer = Answer(query.query_id)
        endpoint.dedupe.record(query.query_id, answer)
        endpoint.send(query.reply_to, answer)

    endpoint.on(Query, handle)
    endpoint.start()
    got = []
    collect_client(sim, net, got)
    net.send("client", "server", Query("client#1", "client"), size_bytes=32)
    net.send("client", "server", Query("client#1", "client"), size_bytes=32)  # retry
    sim.run(until=50.0)
    # At-most-once: two replies, one execution.
    assert got == [Answer("client#1"), Answer("client#1")]
    assert executions == ["client#1"]
    labels = {"node": "server"}
    assert registry.get("dedupe_entries", labels).value == 1
    assert registry.get("dedupe_evictions", labels).value == 0
    # Overflow the cap with non-conforming ids: the LRU backstop evicts.
    for request_id in ("x", "y", "z"):
        endpoint.dedupe.record(request_id, Answer(request_id))
    assert registry.get("dedupe_entries", labels).value == 2
    assert registry.get("dedupe_evictions", labels).value >= 1


def test_auto_instrumentation_counts_in_and_out():
    registry = MetricsRegistry()
    sim, net, endpoint = build(registry=registry)
    endpoint.on_rpc(Query, lambda q: Answer(q.query_id), reply_to=lambda q: q.reply_to)
    endpoint.start()
    got = []
    collect_client(sim, net, got)
    for n in range(3):
        net.send("client", "server", Query(f"q{n}", "client"), size_bytes=32)
    sim.run(until=50.0)
    assert len(got) == 3
    in_counter = registry.get(
        "rpc_messages_in", {"node": "server", "method": "Query", "peer": "client"}
    )
    out_counter = registry.get(
        "rpc_messages_out", {"node": "server", "method": "Answer", "peer": "client"}
    )
    assert in_counter.value == 3
    assert out_counter.value == 3
