"""Retry-policy schedules: shape, jitter bounds, and historical parity."""

import pytest

from repro.rpc import ExponentialBackoff, LinearJitterBackoff, RetryPolicy
from repro.sim import Simulation


def test_base_policy_is_single_attempt_no_delay():
    policy = RetryPolicy()
    assert policy.max_attempts == 1
    assert policy.delay_ms(0, None) == 0.0  # never touches the rng


def test_retry_policy_zero_delay_for_any_attempt():
    policy = RetryPolicy(max_attempts=10)
    assert [policy.delay_ms(a, None) for a in range(10)] == [0.0] * 10


def test_exponential_backoff_grows_and_caps():
    rng = Simulation(seed=7).rng("test")
    policy = ExponentialBackoff(8, base_ms=1.0, factor=2.0, cap_ms=10.0, jitter=0.0)
    delays = [policy.delay_ms(a, rng) for a in range(8)]
    assert delays[:4] == [1.0, 2.0, 4.0, 8.0]
    assert all(d == 10.0 for d in delays[4:])  # capped


def test_exponential_backoff_jitter_bounds():
    rng = Simulation(seed=7).rng("test")
    policy = ExponentialBackoff(6, base_ms=1.0, factor=2.0, cap_ms=50.0, jitter=0.25)
    for attempt in range(6):
        base = min(1.0 * 2.0**attempt, 50.0)
        for _ in range(50):
            delay = policy.delay_ms(attempt, rng)
            assert base <= delay <= base * 1.25


def test_linear_jitter_matches_historical_client_schedule():
    """Draw-for-draw the cluster client's old ``uniform(0.1, 0.5) *
    (1 + attempt)`` backoff, from the same stream state."""
    policy_rng = Simulation(seed=3).rng("client.c0")
    legacy_rng = Simulation(seed=3).rng("client.c0")
    policy = LinearJitterBackoff(40)
    for attempt in range(12):
        assert policy.delay_ms(attempt, policy_rng) == pytest.approx(
            legacy_rng.uniform(0.1, 0.5) * (1 + attempt)
        )


def test_policies_reject_nonpositive_attempts():
    with pytest.raises(ValueError):
        RetryPolicy(0)
    with pytest.raises(ValueError):
        ExponentialBackoff(0)
    with pytest.raises(ValueError):
        LinearJitterBackoff(-1)
