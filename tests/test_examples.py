"""Every example script must run to completion (they assert internally)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SCRIPTS = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert "quickstart.py" in SCRIPTS
    assert len(SCRIPTS) >= 3


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\nstdout:\n{completed.stdout[-2000:]}\n"
        f"stderr:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script} produced no output"
