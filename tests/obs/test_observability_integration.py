"""End-to-end acceptance checks for the observability layer.

Executable versions of the ISSUE-2 acceptance criteria:

- the span tracer reconstructs the full nested-call tree — caller →
  callee across storage nodes, including the §3.1 caller-commit split —
  for one cross-object ``bank.transfer`` request;
- the ``--metrics-out`` payload carries per-node, scheduler, cache,
  kvstore, and replication series for *both* LambdaStore and the
  serverless baseline, and is JSON-serializable as written.
"""

from __future__ import annotations

import json
from dataclasses import replace

from repro.apps.bank import account_type
from repro.bench.calibration import preset
from repro.bench.harness import VARIANTS
from repro.bench.observability import collect_observability
from repro.cluster import Cluster, ClusterConfig
from repro.sim import Simulation

FAMILY_PREFIXES = ("node_", "scheduler_", "cache_", "kvstore_", "replication_")


def _build_cluster(sim: Simulation) -> Cluster:
    cluster = Cluster(
        sim,
        ClusterConfig(num_storage_nodes=4, num_shards=2, enable_cache=True, seed=7),
    )
    cluster.register_type(account_type())
    return cluster


def _cross_shard_accounts(cluster: Cluster):
    """Two account ids living in different replica sets (different primaries)."""
    payer = cluster.create_object("Account", initial={"balance": 100})
    home = cluster.bootstrap_shard_map.shard_for(payer).shard_id
    while True:
        payee = cluster.create_object("Account", initial={"balance": 5})
        if cluster.bootstrap_shard_map.shard_for(payee).shard_id != home:
            return payer, payee


class TestTransferSpanTree:
    def _run_transfer(self):
        sim = Simulation(seed=7)
        cluster = _build_cluster(sim)
        tracer = cluster.enable_tracing()
        payer, payee = _cross_shard_accounts(cluster)
        client = cluster.client("acct")
        result = cluster.run_invoke(client, payer, "transfer", payee, 30)
        assert result is True

        # Let the asynchronous fuel settlement at the payee's owner land.
        def drain():
            yield sim.timeout(100.0)

        sim.run_until_triggered(sim.process(drain()), limit=sim.now + 10_000)
        trace_id = next(
            t
            for t in tracer.trace_ids()
            for root in tracer.roots(t)
            if root.name == "request" and root.attrs.get("method") == "transfer"
        )
        return tracer, trace_id

    def test_reconstructs_cross_node_nested_call_tree(self):
        tracer, trace_id = self._run_transfer()
        spans = tracer.trace(trace_id)

        def find(name, **attrs):
            return [
                s
                for s in spans
                if s.name == name
                and all(s.attrs.get(k) == v for k, v in attrs.items())
            ]

        root = next(s for s in tracer.roots(trace_id) if s.name == "request")
        assert root.attrs["method"] == "transfer"
        caller_node = root.node

        transfer = find("invoke", method="transfer")[0]
        assert transfer.parent_id == root.span_id
        assert transfer.node == caller_node

        # §3.1 caller-commit split: the caller's writes commit *before*
        # each nested call runs, as their own child span of the caller.
        pre_commits = [
            s
            for s in find("commit", reason="pre-nested")
            if s.parent_id == transfer.span_id
        ]
        assert pre_commits

        # The nested cross-object deposit executes at the payee's owner —
        # a different storage node, same trace.
        deposits = [
            s for s in find("invoke", method="deposit")
            if s.parent_id == transfer.span_id
        ]
        assert deposits
        deposit = deposits[0]
        assert deposit.node != caller_node
        assert any(pre.start_ms <= deposit.start_ms for pre in pre_commits)

        # The callee's own commit nests under its invoke span.
        assert any(
            c.parent_id == deposit.span_id for c in find("commit", reason="final")
        )

        # Replication and the remote fuel charge hang off the request root.
        assert any(s.parent_id == root.span_id for s in find("replicate"))
        assert any(s.parent_id == root.span_id for s in find("remote_charge"))

    def test_remote_settlement_joins_trace_as_second_root(self):
        tracer, trace_id = self._run_transfer()
        settles = [s for s in tracer.trace(trace_id) if s.name == "remote_charge.settle"]
        assert settles, "owner-side settlement should correlate by request_id"
        roots = tracer.roots(trace_id)
        assert settles[0] in roots
        assert settles[0].finished

    def test_render_shows_the_whole_story(self):
        tracer, trace_id = self._run_transfer()
        rendered = tracer.render(trace_id)
        for needle in (
            "request",
            "lock.wait",
            "method=transfer",
            "reason=pre-nested",
            "method=deposit",
            "replicate",
            "remote_charge",
        ):
            assert needle in rendered, rendered


class TestMetricsOutPayload:
    def test_both_variants_export_all_five_families(self):
        cal = replace(
            preset("quick"),
            duration_ms=250.0,
            warmup_ms=25.0,
            num_clients=3,
            num_accounts=30,
        )
        payload = collect_observability(cal, sample_interval_ms=25.0)
        assert set(payload["variants"]) == set(VARIANTS)
        for variant in VARIANTS:
            bundle = payload["variants"][variant]
            names = {m["name"] for m in bundle["metrics"]}
            for prefix in FAMILY_PREFIXES:
                assert any(n.startswith(prefix) for n in names), (variant, prefix)
            # the sampler ran: instruments carry time series points
            assert any(m["series"] for m in bundle["metrics"])
            assert bundle["spans"]["traces"] > 0
            assert bundle["spans"]["slowest_trace_tree"]
            assert bundle["report"]["completed"] > 0
        json.dumps(payload)  # exactly what --metrics-out writes


class TestCliWiring:
    def test_metrics_out_flag_writes_payload(self, tmp_path, monkeypatch):
        import repro.bench.observability as obs
        from repro.bench.__main__ import main

        # The real collection reruns both architectures; stub it so this
        # test only covers the CLI wiring (flag -> file -> experiments).
        monkeypatch.setattr(
            obs,
            "collect_observability",
            lambda cal, workload_name=None: {"kind": "observability", "variants": {}},
        )
        out = tmp_path / "metrics.json"
        assert main(["abl_coldstart", "--metrics-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "observability"
        assert "abl_coldstart" in payload["experiments"]
