"""Head sampling must be free of simulation side effects.

The ISSUE-8 acceptance criteria, executable:

- a workload run with ``trace_sample_rate=0.1`` produces byte-identical
  workload rows and event counts vs ``1.0`` (and vs tracing off) — the
  sampling decision is a pure function of the trace id and never touches
  the event queue or any rng stream;
- error-path requests are always traced (escalated) even when head
  sampling would have dropped them.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.apps.bank import account_type
from repro.bench.calibration import preset
from repro.bench.harness import run_replication_mix
from repro.cluster import Cluster, ClusterConfig
from repro.sim import Simulation

#: trimmed mix calibration: enough traffic to exercise replication,
#: caching, and the scheduler, small enough for the unit suite
_TINY = replace(
    preset("quick"),
    duration_ms=300.0,
    warmup_ms=50.0,
    num_clients=4,
    num_accounts=60,
    avg_follows=3,
    seed_posts_per_account=2,
)


def _fingerprint(trace_sample_rate):
    result, platform, sim = run_replication_mix(
        _TINY, trace_sample_rate=trace_sample_rate
    )
    rows = {
        method: (
            report.completed,
            report.throughput_per_sec,
            report.median_ms,
            report.p99_ms,
        )
        for method, report in result.reports.items()
    }
    return {
        "rows": rows,
        "total_completed": result.total_completed,
        "failures": result.failures,
        "events": sim.events_scheduled,
        "final_now": sim.now,
        "messages": platform.net.stats.messages_sent,
    }


def test_sample_rate_does_not_perturb_the_simulation():
    untraced = _fingerprint(None)
    full = _fingerprint(1.0)
    sampled = _fingerprint(0.1)
    assert untraced == full == sampled


def test_sampling_records_fewer_spans_than_full_tracing():
    _result, full_platform, _sim = run_replication_mix(
        _TINY, trace_sample_rate=1.0
    )
    _result, sampled_platform, _sim = run_replication_mix(
        _TINY, trace_sample_rate=0.1
    )
    full_spans = len(full_platform.tracer.spans)
    sampled_spans = len(sampled_platform.tracer.spans)
    assert full_spans > 0
    assert 0 < sampled_spans < full_spans / 2


def test_error_requests_are_always_traced_despite_sampling():
    sim = Simulation(seed=7)
    cluster = Cluster(
        sim,
        ClusterConfig(
            num_storage_nodes=3, num_shards=1, seed=7, trace_sample_rate=0.0
        ),
    )
    cluster.register_type(account_type())
    tracer = cluster.enable_tracing()
    account = cluster.create_object("Account", initial={"balance": 100})
    client = cluster.client("acct")

    # A healthy request at rate 0.0 leaves no spans behind...
    assert cluster.run_invoke(client, account, "deposit", 10) == 110
    assert len(tracer) == 0

    # ...but a guest error escalates its request to always-traced.
    with pytest.raises(Exception):
        cluster.run_invoke(client, account, "deposit", -5)
    markers = [s for s in tracer.spans if s.name == "escalated"]
    assert markers, "error request must be force-traced under head sampling"
    assert markers[0].attrs.get("reason") == "invoke.error"
    assert tracer.trace(markers[0].trace_id)
