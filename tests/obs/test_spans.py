"""Unit tests for the span tracer."""

import pytest

from repro.obs import SpanTracer


def make_tracer():
    now = {"t": 0.0}
    tracer = SpanTracer(clock=lambda: now["t"])
    return tracer, now


def test_explicit_start_end_records_duration():
    tracer, now = make_tracer()
    span = tracer.start("replicate", trace_id="req-1", node="store-0")
    now["t"] = 4.0
    tracer.end(span)
    assert span.finished
    assert span.duration_ms == pytest.approx(4.0)
    assert tracer.trace("req-1") == [span]


def test_context_manager_nests_on_stack():
    tracer, now = make_tracer()
    with tracer.span("request", trace_id="req-2", node="store-0") as root:
        with tracer.span("execute") as child:
            assert tracer.current() is child
            with tracer.span("cache.lookup", hit=True) as grandchild:
                pass
    assert tracer.current() is None
    assert child.parent_id == root.span_id
    assert grandchild.parent_id == child.span_id
    # trace id and node inherit down the stack
    assert grandchild.trace_id == "req-2"
    assert grandchild.node == "store-0"
    assert grandchild.attrs == {"hit": True}


def test_error_status_on_exception():
    tracer, _now = make_tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("execute", trace_id="req-3"):
            raise RuntimeError("boom")
    (span,) = tracer.trace("req-3")
    assert span.status == "error"
    assert span.finished


def test_activate_parents_without_closing():
    tracer, now = make_tracer()
    root = tracer.start("request", trace_id="req-4", node="store-0")
    with tracer.activate(root):
        with tracer.span("execute"):
            pass
    assert not root.finished  # activate() never closes
    (child,) = tracer.children(root)
    assert child.name == "execute"


def test_auto_trace_id_when_unanchored():
    tracer, _now = make_tracer()
    a = tracer.start("invoke")
    b = tracer.start("invoke")
    assert a.trace_id != b.trace_id
    assert a.trace_id.startswith("local-")


def test_roots_and_children():
    tracer, _now = make_tracer()
    root = tracer.start("request", trace_id="t")
    child = tracer.start("execute", parent=root)
    assert tracer.roots("t") == [root]
    assert tracer.children(root) == [child]


def test_slowest_trace():
    tracer, now = make_tracer()
    fast = tracer.start("request", trace_id="fast")
    now["t"] = 1.0
    tracer.end(fast)
    slow = tracer.start("request", trace_id="slow")
    now["t"] = 50.0
    tracer.end(slow)
    assert tracer.slowest_trace() == "slow"


def test_render_tree_shape():
    tracer, now = make_tracer()
    with tracer.span("request", trace_id="req-5", node="store-0", method="transfer"):
        with tracer.span("execute"):
            with tracer.span("commit", reason="pre-nested"):
                pass
            with tracer.span("execute", node="store-1"):
                pass
        span = tracer.start("replicate")
        now["t"] = 2.0
        tracer.end(span)
    text = tracer.render("req-5")
    assert "trace req-5" in text
    assert "request @store-0" in text
    assert "method=transfer" in text
    assert "@store-1" in text
    assert "replicate" in text
    # children indent under their parent
    lines = text.splitlines()
    request_line = next(i for i, l in enumerate(lines) if "request" in l)
    execute_line = next(i for i, l in enumerate(lines) if "execute" in l)
    assert execute_line > request_line
    assert tracer.render("missing") == "trace missing: no spans"


def test_span_ring_buffer_bounds_memory():
    tracer = SpanTracer(max_spans=10)
    for index in range(25):
        span = tracer.start("s", trace_id=f"t{index}")
        tracer.end(span)
    assert len(tracer) <= 10
    assert tracer.dropped_oldest > 0
    # index stays consistent with the retained spans
    retained = {span.trace_id for span in tracer.spans}
    assert set(tracer.trace_ids()) == retained


def test_snapshot_serializable():
    import json

    tracer, _now = make_tracer()
    with tracer.span("request", trace_id="req-6", method="get"):
        pass
    payload = json.loads(json.dumps(tracer.snapshot("req-6")))
    assert payload["spans"][0]["name"] == "request"
    assert payload["spans"][0]["attrs"] == {"method": "get"}


# -- head sampling ---------------------------------------------------------


def _partition_by_sample(rate: float, count: int = 200):
    """Trace ids split into (sampled, unsampled) at ``rate`` by the same
    crc32 head decision the tracer uses."""
    from zlib import crc32

    threshold = int(rate * (1 << 32))
    sampled, unsampled = [], []
    for i in range(count):
        tid = f"req-{i}"
        (sampled if crc32(tid.encode()) < threshold else unsampled).append(tid)
    return sampled, unsampled


def test_head_sampling_is_deterministic_and_roughly_proportional():
    sampled, unsampled = _partition_by_sample(0.1)
    tracer = SpanTracer(sample_rate=0.1)
    for tid in sampled:
        assert tracer.sampled(tid)
    for tid in unsampled:
        assert not tracer.sampled(tid)
    # A second tracer makes identical decisions (no salted hash, no rng).
    again = SpanTracer(sample_rate=0.1)
    assert [again.sampled(f"req-{i}") for i in range(200)] == [
        tracer.sampled(f"req-{i}") for i in range(200)
    ]
    assert 5 <= len(sampled) <= 60  # ~10% of 200, generously bounded


def test_unsampled_trace_records_shared_noop_span():
    from repro.obs.spans import NOOP_SPAN

    sampled, unsampled = _partition_by_sample(0.1)
    tracer = SpanTracer(sample_rate=0.1)
    span = tracer.start("request", trace_id=unsampled[0], node="store-0")
    assert span is NOOP_SPAN
    # Children parented on a noop span are the same shared instance, even
    # through the synchronous stack.
    with tracer.activate(span):
        child = tracer.start("execute")
        assert child is NOOP_SPAN
    tracer.end(span)  # no-op: already "finished"
    assert len(tracer) == 0
    # A sampled trace on the same tracer records real spans.
    real = tracer.start("request", trace_id=sampled[0], node="store-0")
    assert real is not NOOP_SPAN
    tracer.end(real)
    assert len(tracer) == 1


def test_noop_span_swallows_writes_and_snapshots_empty():
    from repro.obs.spans import NOOP_SPAN

    NOOP_SPAN.attrs["key"] = "value"
    NOOP_SPAN.attrs.update(other=1)
    NOOP_SPAN.status = "error"
    assert NOOP_SPAN.attrs == {}
    assert NOOP_SPAN.status == "ok"
    assert NOOP_SPAN.snapshot() == {}
    assert NOOP_SPAN.finished
    assert NOOP_SPAN.duration_ms == 0.0


def test_escalate_forces_recording_with_marker():
    _sampled, unsampled = _partition_by_sample(0.1)
    anomalous = unsampled[0]
    tracer = SpanTracer(sample_rate=0.1)
    assert tracer.start("request", trace_id=anomalous).snapshot() == {}
    tracer.escalate(anomalous, reason="invoke.error", node="store-1")
    # The marker span makes the trace non-empty...
    (marker,) = tracer.trace(anomalous)
    assert marker.name == "escalated"
    assert marker.attrs["reason"] == "invoke.error"
    assert marker.node == "store-1"
    # ...and every span opened for it from now on is real.
    span = tracer.start("retry", trace_id=anomalous)
    assert span.snapshot() != {}
    # Idempotent: a second escalation adds nothing.
    before = len(tracer)
    tracer.escalate(anomalous, reason="rpc.retry")
    assert len(tracer) == before


def test_escalate_is_noop_at_full_rate():
    tracer, _now = make_tracer()
    tracer.escalate("req-1", reason="shed")
    assert len(tracer) == 0
    assert tracer.trace("req-1") == []


def test_trace_eviction_bounds_completed_traces():
    now = {"t": 0.0}
    tracer = SpanTracer(
        clock=lambda: now["t"], max_traces=16, keep_slowest=2, sample_rate=1.0
    )
    # One early error trace and one early ultra-slow trace, then a stream
    # of fast completed traces that overflows the cap.
    with pytest.raises(ValueError):
        with tracer.span("request", trace_id="err-0", node="n"):
            raise ValueError("boom")
    slow = tracer.start("request", trace_id="slow-0", node="n")
    now["t"] += 500.0
    tracer.end(slow)
    for i in range(40):
        span = tracer.start("request", trace_id=f"fast-{i}", node="n")
        now["t"] += 0.1
        tracer.end(span)
    assert len(tracer.trace_ids()) <= 16
    assert tracer.dropped_traces > 0
    # The error trace and the slowest trace survived the churn.
    assert tracer.trace("err-0")
    assert tracer.trace("slow-0")
    # spans list stays consistent with the per-trace index.
    assert {s.trace_id for s in tracer.spans} == set(tracer.trace_ids())


def test_open_traces_are_never_evicted():
    tracer = SpanTracer(max_traces=8, keep_slowest=0)
    open_span = tracer.start("request", trace_id="open-0", node="n")
    for i in range(30):
        span = tracer.start("request", trace_id=f"done-{i}", node="n")
        tracer.end(span)
    assert tracer.trace("open-0") == [open_span]
