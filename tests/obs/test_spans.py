"""Unit tests for the span tracer."""

import pytest

from repro.obs import SpanTracer


def make_tracer():
    now = {"t": 0.0}
    tracer = SpanTracer(clock=lambda: now["t"])
    return tracer, now


def test_explicit_start_end_records_duration():
    tracer, now = make_tracer()
    span = tracer.start("replicate", trace_id="req-1", node="store-0")
    now["t"] = 4.0
    tracer.end(span)
    assert span.finished
    assert span.duration_ms == pytest.approx(4.0)
    assert tracer.trace("req-1") == [span]


def test_context_manager_nests_on_stack():
    tracer, now = make_tracer()
    with tracer.span("request", trace_id="req-2", node="store-0") as root:
        with tracer.span("execute") as child:
            assert tracer.current() is child
            with tracer.span("cache.lookup", hit=True) as grandchild:
                pass
    assert tracer.current() is None
    assert child.parent_id == root.span_id
    assert grandchild.parent_id == child.span_id
    # trace id and node inherit down the stack
    assert grandchild.trace_id == "req-2"
    assert grandchild.node == "store-0"
    assert grandchild.attrs == {"hit": True}


def test_error_status_on_exception():
    tracer, _now = make_tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("execute", trace_id="req-3"):
            raise RuntimeError("boom")
    (span,) = tracer.trace("req-3")
    assert span.status == "error"
    assert span.finished


def test_activate_parents_without_closing():
    tracer, now = make_tracer()
    root = tracer.start("request", trace_id="req-4", node="store-0")
    with tracer.activate(root):
        with tracer.span("execute"):
            pass
    assert not root.finished  # activate() never closes
    (child,) = tracer.children(root)
    assert child.name == "execute"


def test_auto_trace_id_when_unanchored():
    tracer, _now = make_tracer()
    a = tracer.start("invoke")
    b = tracer.start("invoke")
    assert a.trace_id != b.trace_id
    assert a.trace_id.startswith("local-")


def test_roots_and_children():
    tracer, _now = make_tracer()
    root = tracer.start("request", trace_id="t")
    child = tracer.start("execute", parent=root)
    assert tracer.roots("t") == [root]
    assert tracer.children(root) == [child]


def test_slowest_trace():
    tracer, now = make_tracer()
    fast = tracer.start("request", trace_id="fast")
    now["t"] = 1.0
    tracer.end(fast)
    slow = tracer.start("request", trace_id="slow")
    now["t"] = 50.0
    tracer.end(slow)
    assert tracer.slowest_trace() == "slow"


def test_render_tree_shape():
    tracer, now = make_tracer()
    with tracer.span("request", trace_id="req-5", node="store-0", method="transfer"):
        with tracer.span("execute"):
            with tracer.span("commit", reason="pre-nested"):
                pass
            with tracer.span("execute", node="store-1"):
                pass
        span = tracer.start("replicate")
        now["t"] = 2.0
        tracer.end(span)
    text = tracer.render("req-5")
    assert "trace req-5" in text
    assert "request @store-0" in text
    assert "method=transfer" in text
    assert "@store-1" in text
    assert "replicate" in text
    # children indent under their parent
    lines = text.splitlines()
    request_line = next(i for i, l in enumerate(lines) if "request" in l)
    execute_line = next(i for i, l in enumerate(lines) if "execute" in l)
    assert execute_line > request_line
    assert tracer.render("missing") == "trace missing: no spans"


def test_span_ring_buffer_bounds_memory():
    tracer = SpanTracer(max_spans=10)
    for index in range(25):
        span = tracer.start("s", trace_id=f"t{index}")
        tracer.end(span)
    assert len(tracer) <= 10
    assert tracer.dropped_oldest > 0
    # index stays consistent with the retained spans
    retained = {span.trace_id for span in tracer.spans}
    assert set(tracer.trace_ids()) == retained


def test_snapshot_serializable():
    import json

    tracer, _now = make_tracer()
    with tracer.span("request", trace_id="req-6", method="get"):
        pass
    payload = json.loads(json.dumps(tracer.snapshot("req-6")))
    assert payload["spans"][0]["name"] == "request"
    assert payload["spans"][0]["attrs"] == {"method": "get"}
