"""Unit tests for the metrics registry."""

import json
import math

import pytest

from repro.obs import MetricsRegistry, StatsView, to_json, to_prometheus


def test_counter_inc_and_set():
    registry = MetricsRegistry()
    counter = registry.counter("requests")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    counter.set(2)
    assert counter.value == 2


def test_get_or_create_is_keyed_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("requests", {"node": "store-0"})
    b = registry.counter("requests", {"node": "store-1"})
    again = registry.counter("requests", {"node": "store-0"})
    assert a is again
    assert a is not b
    assert len(registry) == 2


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_callback_gauge_pulls_value():
    registry = MetricsRegistry()
    backing = {"n": 0}
    gauge = registry.gauge("queue_depth", fn=lambda: backing["n"])
    assert gauge.value == 0
    backing["n"] = 7
    assert gauge.value == 7
    with pytest.raises(ValueError):
        gauge.set(1)


def test_histogram_buckets_and_quantile():
    registry = MetricsRegistry()
    hist = registry.histogram("latency_ms", buckets=(1.0, 10.0, 100.0))
    for value in (0.5, 0.5, 5.0, 50.0):
        hist.observe(value)
    assert hist.count == 4
    assert hist.sum == pytest.approx(56.0)
    assert hist.quantile(0.5) == 1.0
    assert hist.quantile(0.99) == 100.0
    assert math.isnan(registry.histogram("empty").quantile(0.5))


def test_time_series_sampling_uses_clock():
    now = {"t": 0.0}
    registry = MetricsRegistry(clock=lambda: now["t"])
    counter = registry.counter("ops")
    counter.inc()
    registry.sample()
    now["t"] = 10.0
    counter.inc(2)
    registry.sample()
    assert counter.series == [(0.0, 1.0), (10.0, 3.0)]


def test_series_is_bounded():
    from repro.obs import registry as registry_module

    registry = MetricsRegistry()
    counter = registry.counter("ops")
    for tick in range(registry_module.MAX_SERIES_POINTS + 10):
        registry.sample(now=float(tick))
    assert len(counter.series) <= registry_module.MAX_SERIES_POINTS
    assert counter.dropped_points > 0


def test_duplicate_timestamp_overwrites_last_point():
    registry = MetricsRegistry()
    counter = registry.counter("ops")
    registry.sample(now=5.0)
    counter.inc()
    registry.sample(now=5.0)
    assert counter.series == [(5.0, 1.0)]


def test_snapshot_shape_and_json_round_trip():
    registry = MetricsRegistry()
    registry.counter("ops", {"node": "a"}).inc(3)
    registry.histogram("lat", buckets=(1.0,)).observe(0.5)
    payload = json.loads(to_json(registry))
    names = {metric["name"] for metric in payload["metrics"]}
    assert names == {"ops", "lat"}
    by_name = {metric["name"]: metric for metric in payload["metrics"]}
    assert by_name["ops"]["labels"] == {"node": "a"}
    assert by_name["ops"]["value"] == 3
    assert by_name["lat"]["count"] == 1
    assert by_name["lat"]["buckets"] == [{"le": 1.0, "count": 1}]
    # snapshot() itself samples, so every metric has at least one point
    assert all(metric["series"] for metric in payload["metrics"])


def test_prometheus_text_format():
    registry = MetricsRegistry()
    registry.counter("node_requests", {"node": "store-0"}, help="requests served").inc(2)
    registry.histogram("req_ms", buckets=(1.0, 10.0)).observe(0.5)
    text = to_prometheus(registry)
    assert "# TYPE node_requests counter" in text
    assert 'node_requests{node="store-0"} 2' in text
    assert "# HELP node_requests requests served" in text
    assert 'req_ms_bucket{le="1"} 1' in text
    assert 'req_ms_bucket{le="+Inf"} 1' in text
    assert "req_ms_count 1" in text


class _DemoStats(StatsView):
    PREFIX = "demo"
    COUNTERS = {"requests": 0, "busy_ms": 0.0}
    GAUGES = {"depth": 0}


def test_stats_view_attribute_protocol():
    stats = _DemoStats()
    stats.requests += 1
    stats.requests += 1
    stats.busy_ms += 1.5
    stats.depth = 4
    assert stats.requests == 2
    assert isinstance(stats.requests, int)
    assert stats.busy_ms == pytest.approx(1.5)
    assert stats.depth == 4
    assert stats.as_dict() == {"requests": 2, "busy_ms": 1.5, "depth": 4}
    assert stats.snapshot() == stats.as_dict()
    with pytest.raises(AttributeError):
        stats.nonexistent
    with pytest.raises(AttributeError):
        stats.nonexistent = 1


def test_stats_view_shares_platform_registry():
    registry = MetricsRegistry()
    stats = _DemoStats(registry, labels={"node": "store-0"})
    stats.requests += 3
    metric = registry.get("demo_requests", {"node": "store-0"})
    assert metric is not None and metric.value == 3


def test_stats_view_equality_and_repr():
    a, b = _DemoStats(), _DemoStats()
    assert a == b
    a.requests += 1
    assert a != b
    assert "requests=1" in repr(a)


def test_counter_cells_fold_lazily_on_read():
    registry = MetricsRegistry()
    counter = registry.counter("requests")
    cell_a = counter.cell()
    cell_b = counter.cell()
    cell_a.inc()
    cell_a.inc(3)
    cell_b.inc(2)
    counter.inc()  # direct increments still work alongside cells
    assert counter.value == 7
    # Reading folded the cells: they are empty, the total persists.
    assert cell_a.n == 0 and cell_b.n == 0
    assert counter.value == 7
    cell_b.inc(5)
    assert counter.value == 12


def test_counter_set_discards_unfolded_cell_increments():
    registry = MetricsRegistry()
    counter = registry.counter("requests")
    cell = counter.cell()
    cell.inc(10)
    counter.set(2)
    # The pre-set cell increments must not resurface on the next fold.
    assert counter.value == 2
    cell.inc()
    assert counter.value == 3


def test_counter_cells_visible_at_sampling_ticks():
    registry = MetricsRegistry()
    counter = registry.counter("requests")
    cell = counter.cell()
    cell.inc(4)
    registry.sample(10.0)
    assert counter.series == [(10.0, 4.0)]
    cell.inc(2)
    registry.sample(20.0)
    assert counter.series == [(10.0, 4.0), (20.0, 6.0)]


def test_stats_view_cell_requires_counter():
    registry = MetricsRegistry()
    stats = _DemoStats(registry, labels={"node": "store-0"})
    cell = stats.cell("requests")
    cell.inc(2)
    assert stats.requests == 2
    # stats.x += 1 (read-fold + set) composes with concurrent cells
    stats.requests += 1
    assert stats.requests == 3
    with pytest.raises(TypeError):
        stats.cell("depth")
