"""API portability: the same application code runs on all three platforms.

The paper's pitch is that LambdaObjects applications are "as easy to
develop and deploy as other serverless applications"; concretely, one
object type must run unchanged on the embedded runtime, the LambdaStore
cluster, and the disaggregated baseline — and produce the same answers.
"""

import pytest

from repro.apps.retwis import user_type
from repro.cluster import Cluster, ClusterConfig
from repro.core import LocalRuntime, ObjectId
from repro.serverless import ServerlessConfig, ServerlessPlatform
from repro.sim import Simulation


ALICE = ObjectId.from_name("port-alice")
BOB = ObjectId.from_name("port-bob")


def scenario(create_object, invoke):
    """One ReTwis scenario, parameterised over a platform's primitives."""
    create_object("User", ALICE, {"name": "alice"})
    create_object("User", BOB, {"name": "bob"})
    invoke(BOB, "follow", ALICE)
    invoke(ALICE, "create_post", "portable hello")
    return {
        "bob_timeline": [p["text"] for p in invoke(BOB, "get_timeline", 5)],
        "alice_profile": invoke(ALICE, "get_profile"),
    }


def run_on_local():
    runtime = LocalRuntime(seed=1)
    runtime.register_type(user_type())
    return scenario(
        lambda t, oid, init: runtime.create_object(t, object_id=oid, initial=init),
        lambda oid, m, *a: runtime.invoke(oid, m, *a),
    )


def run_on_cluster():
    sim = Simulation(seed=1)
    cluster = Cluster(sim, ClusterConfig(seed=1))
    cluster.register_type(user_type())
    cluster.start()
    client = cluster.client("port")
    return scenario(
        lambda t, oid, init: cluster.create_object(t, object_id=oid, initial=init),
        lambda oid, m, *a: cluster.run_invoke(client, oid, m, *a),
    )


def run_on_baseline():
    sim = Simulation(seed=1)
    platform = ServerlessPlatform(sim, ServerlessConfig(seed=1))
    platform.register_type(user_type())
    platform.start()
    client = platform.client("port")
    return scenario(
        lambda t, oid, init: platform.create_object(t, object_id=oid, initial=init),
        lambda oid, m, *a: platform.run_invoke(client, oid, m, *a),
    )


def test_all_three_platforms_agree():
    local = run_on_local()
    cluster = run_on_cluster()
    baseline = run_on_baseline()
    assert local["bob_timeline"] == ["portable hello"]
    assert local["alice_profile"]["followers"] == 1
    assert cluster == local
    assert baseline == local
