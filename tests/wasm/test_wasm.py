"""Unit tests for the wasm-like runtime: fuel, modules, instances."""

import pytest

from repro.errors import FuelExhausted, LinkError, MemoryLimitExceeded, Trap, WasmError
from repro.wasm import FuelMeter, GuestFunction, Instance, Module, OpCosts


def make_module(**kwargs):
    def add(host, a, b):
        return a + b

    def boom(host):
        raise ValueError("guest bug")

    def burn(host, units):
        host.fuel.consume(units)

    functions = [
        GuestFunction("add", add),
        GuestFunction("boom", boom),
        GuestFunction("burn", burn, **kwargs),
    ]
    return Module.compile("test", functions)


class FuelHost:
    """Minimal host exposing the instance's fuel meter to the guest."""

    def __init__(self):
        self.fuel = None


def make_instance(module=None, **kwargs):
    module = module or make_module()
    host = FuelHost()
    instance = Instance(module, host, **kwargs)
    host.fuel = instance.fuel
    return instance


# -- FuelMeter ---------------------------------------------------------


def test_fuel_counts_usage():
    meter = FuelMeter(budget=100)
    meter.consume(30)
    meter.consume(20)
    assert meter.used == 50
    assert meter.remaining == 50


def test_fuel_exhaustion_traps():
    meter = FuelMeter(budget=10)
    with pytest.raises(FuelExhausted):
        meter.consume(11)


def test_unlimited_fuel_still_counts():
    meter = FuelMeter()
    meter.consume(1e9)
    assert meter.used == 1e9


def test_negative_fuel_rejected():
    with pytest.raises(ValueError):
        FuelMeter(budget=-1)
    with pytest.raises(ValueError):
        FuelMeter(budget=10).consume(-1)


# -- Module --------------------------------------------------------------


def test_compile_and_export():
    module = make_module()
    assert module.export("add").public


def test_missing_export_raises_link_error():
    module = make_module()
    with pytest.raises(LinkError):
        module.export("nope")


def test_duplicate_export_rejected():
    fn = GuestFunction("f", lambda host: None)
    with pytest.raises(LinkError):
        Module.compile("dup", [fn, fn])


def test_empty_module_rejected():
    with pytest.raises(LinkError):
        Module.compile("empty", [])


def test_function_without_parameters_rejected():
    with pytest.raises(LinkError):
        GuestFunction("bad", lambda: None)


def test_non_callable_rejected():
    with pytest.raises(LinkError):
        GuestFunction("bad", 42)  # type: ignore[arg-type]


def test_code_size_positive():
    assert make_module().code_size > 0


# -- Instance ------------------------------------------------------------


def test_call_returns_guest_value():
    assert make_instance().call("add", 2, 3) == 5


def test_guest_exception_becomes_trap():
    with pytest.raises(Trap) as excinfo:
        make_instance().call("boom")
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_instance_is_single_use():
    instance = make_instance()
    instance.call("add", 1, 1)
    with pytest.raises(WasmError):
        instance.call("add", 1, 1)


def test_fuel_budget_enforced_during_guest_execution():
    instance = make_instance(fuel=FuelMeter(budget=100))
    with pytest.raises(FuelExhausted):
        instance.call("burn", 1000)


def test_compute_fuel_charged_on_entry():
    module = make_module(compute_fuel=40.0)
    instance = make_instance(module, fuel=FuelMeter(budget=100))
    instance.call("burn", 10)
    assert instance.fuel.used == 50.0


def test_memory_limit_traps():
    instance = make_instance(memory_limit_bytes=1024)
    instance.charge_memory(1000)
    with pytest.raises(MemoryLimitExceeded):
        instance.charge_memory(100)


def test_op_costs_payload_scaling():
    costs = OpCosts(bytes_per_unit=64)
    assert costs.payload(128) == 2.0
    assert costs.payload(0) == 0.0
