#!/usr/bin/env python3
"""An online store composed of LambdaObjects (§3's application sketch).

Auth service + product inventory + shopping carts, composed as a graph
of cross-object invocations on the embedded runtime.  Shows the §3.1
commit-point semantics at work: checkout reserves per-product stock step
by step and compensates on failure.

Run with::

    python examples/online_store.py
"""

from repro.apps.auth import auth_service_type
from repro.apps.store import cart_type, product_type
from repro.core import LocalRuntime
from repro.errors import InvocationError


def main():
    runtime = LocalRuntime(seed=3)
    runtime.register_types([auth_service_type(), product_type(), cart_type()])

    auth = runtime.create_object("AuthService")
    widget = runtime.create_object(
        "Product", initial={"name": "widget", "price": 19, "stock": 5}
    )
    gadget = runtime.create_object(
        "Product", initial={"name": "gadget", "price": 45, "stock": 1}
    )
    cart = runtime.create_object("Cart")

    print("== register + login ==")
    runtime.invoke(auth, "register", "dana", "hunter2")
    token = runtime.invoke(auth, "login", "dana", "hunter2")
    print(f"dana's session token: {token}")

    # Token validation is read-only + deterministic => consistently cached.
    runtime.invoke(auth, "validate_token", token)
    cached = runtime.invoke_detailed(auth, "validate_token", token)
    print(f"token re-validation served from cache: {cached.cache_hit}")

    print("\n== fill the cart and check out ==")
    runtime.invoke(cart, "add_item", widget, 2)
    runtime.invoke(cart, "add_item", gadget, 1)
    order = runtime.invoke(cart, "checkout", auth, token)
    print(f"order placed for {order['user']}: {order['items']}")
    print(f"widget stock now: {runtime.invoke(widget, 'get_stock')}")
    print(f"gadget stock now: {runtime.invoke(gadget, 'get_stock')}")

    print("\n== a failing checkout compensates ==")
    runtime.invoke(cart, "add_item", widget, 2)
    runtime.invoke(cart, "add_item", gadget, 1)  # gadget is out of stock now
    try:
        runtime.invoke(cart, "checkout", auth, token)
    except InvocationError as error:
        print(f"checkout failed as expected: {str(error)[:70]}...")
    print(f"widget stock restored to: {runtime.invoke(widget, 'get_stock')}")
    print(f"cart still holds: {runtime.invoke(cart, 'get_items')}")

    print("\n== logout invalidates the cached validation ==")
    runtime.invoke(auth, "logout", token)
    print(f"token still valid? {runtime.invoke(auth, 'validate_token', token)}")


if __name__ == "__main__":
    main()
