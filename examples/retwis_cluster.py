#!/usr/bin/env python3
"""ReTwis on a replicated LambdaStore cluster (the paper's Listing 1).

Builds the §5 deployment — a three-node replica set with a Paxos-backed
coordinator — loads a small social graph, and walks through posting,
timelines, the block-causality guarantee of §2, and a primary failover
that loses nothing.

Run with::

    python examples/retwis_cluster.py
"""

from repro.apps.retwis import user_type
from repro.cluster import Cluster, ClusterConfig
from repro.sim import Simulation


def main():
    sim = Simulation(seed=7)
    cluster = Cluster(sim, ClusterConfig(num_storage_nodes=3, seed=7))
    cluster.register_type(user_type())
    cluster.start()

    alice = cluster.create_object("User", initial={"name": "alice"})
    bob = cluster.create_object("User", initial={"name": "bob"})
    carol = cluster.create_object("User", initial={"name": "carol"})
    client = cluster.client("demo")

    def run(object_id, method, *args):
        return cluster.run_invoke(client, object_id, method, *args)

    print("== follow graph ==")
    run(bob, "follow", alice)
    run(carol, "follow", alice)
    print(f"alice's profile: {run(alice, 'get_profile')}")

    print("\n== posting fans out to follower timelines ==")
    run(alice, "create_post", "hello, distributed world")
    for name, oid in [("bob", bob), ("carol", carol)]:
        timeline = run(oid, "get_timeline", 5)
        print(f"{name}'s timeline: {[post['text'] for post in timeline]}")

    print("\n== blocking respects causality (§2) ==")
    run(alice, "block", carol)
    run(alice, "create_post", "carol must not see this")
    print(f"carol's timeline: {[p['text'] for p in run(carol, 'get_timeline', 5)]}")
    print(f"bob's timeline:   {[p['text'] for p in run(bob, 'get_timeline', 5)]}")

    print("\n== failover: crash the primary mid-service ==")
    epoch_before, shard_map = cluster.current_config()
    print(f"epoch {epoch_before}, primary = {shard_map.replica_sets[0].primary}")
    cluster.crash_node("store-0")
    run(alice, "create_post", "posted after the crash")
    epoch_after, shard_map = cluster.current_config()
    print(f"epoch {epoch_after}, new primary = {shard_map.replica_sets[0].primary}")
    timeline = run(bob, "get_timeline", 5)
    print(f"bob still sees everything: {[post['text'] for post in timeline]}")

    latencies = [f"{latency:.2f}" for latency, _m in client.completions]
    print(f"\nper-invocation latencies (simulated ms): {latencies}")


if __name__ == "__main__":
    main()
