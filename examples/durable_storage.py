#!/usr/bin/env python3
"""LambdaObjects over the persistent LSM store (the LevelDB stand-in).

The paper's LambdaStore persists through LevelDB; this repository ships
a from-scratch LSM tree (:mod:`repro.kvstore`) with the same structure:
WAL, memtable, SSTables with bloom filters, leveled compaction,
snapshots.  This example runs the object runtime on top of it and proves
the data survives a crash-and-reopen.

Run with::

    python examples/durable_storage.py
"""

import tempfile

from repro.core import (
    KVBackend,
    LocalRuntime,
    ObjectId,
    ObjectType,
    ValueField,
    method,
    readonly_method,
)
from repro.kvstore import DB, DBOptions


def counter_type():
    def bump(self):
        value = (self.get("value") or 0) + 1
        self.set("value", value)
        return value

    def read(self):
        return self.get("value") or 0

    return ObjectType(
        "DurableCounter",
        fields=[ValueField("value", default=0)],
        methods=[method(bump), readonly_method(read)],
    )


def main():
    directory = tempfile.mkdtemp(prefix="lambdaobjects-")
    oid = ObjectId.from_name("the-counter")
    # Small thresholds so even this demo exercises flush + compaction.
    options = DBOptions(memtable_size_bytes=4096, l0_compaction_trigger=2)

    print(f"opening LSM database at {directory}")
    with DB.open(directory, options) as db:
        runtime = LocalRuntime(storage=KVBackend(db))
        runtime.register_type(counter_type())
        runtime.create_object("DurableCounter", object_id=oid)
        for _ in range(500):
            runtime.invoke(oid, "bump")
        print(f"counter after 500 bumps: {runtime.invoke(oid, 'read')}")
        print(f"LSM level file counts: {db.level_file_counts()}")
        print(f"flushes: {db.stats.flushes}, compactions: {db.stats.compactions}")

    print("\ndatabase closed (simulating a restart)...")
    with DB.open(directory, options) as db:
        runtime = LocalRuntime(storage=KVBackend(db))
        runtime.register_type(counter_type())
        value = runtime.invoke(oid, "read")
        print(f"counter recovered from WAL + SSTables: {value}")
        assert value == 500
        runtime.invoke(oid, "bump")
        print(f"and it keeps counting: {runtime.invoke(oid, 'read')}")
        print(f"block cache hit rate: {db.block_cache_stats.hit_rate:.2f}")


if __name__ == "__main__":
    main()
