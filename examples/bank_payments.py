#!/usr/bin/env python3
"""Digital payments: the strong-consistency motivation of §2.

Concurrent clients hammer one account with withdrawals on a replicated
LambdaStore cluster.  Per-object scheduling serialises them, so the
account is never overdrawn — no locks in application code, no aborts, no
retry loops.

Run with::

    python examples/bank_payments.py
"""

from repro.apps.bank import account_type
from repro.cluster import Cluster, ClusterConfig
from repro.sim import Simulation


def main():
    sim = Simulation(seed=11)
    cluster = Cluster(sim, ClusterConfig(num_storage_nodes=3, seed=11))
    cluster.register_type(account_type())
    cluster.start()

    shared = cluster.create_object("Account", initial={"balance": 100})
    payee = cluster.create_object("Account", initial={"balance": 0})

    print("shared account starts with balance 100; 15 clients withdraw 10 each")
    outcomes = {"ok": 0, "rejected": 0}

    def withdrawer(index):
        client = cluster.client(f"atm-{index}")
        try:
            remaining = yield from client.invoke(shared, "withdraw", 10)
            outcomes["ok"] += 1
            print(f"  atm-{index}: withdrew 10, balance now {remaining}")
        except Exception as error:
            outcomes["rejected"] += 1
            print(f"  atm-{index}: rejected ({str(error)[:60]}...)")

    processes = [sim.process(withdrawer(i)) for i in range(15)]
    sim.run_until_triggered(sim.all_of(processes), limit=120_000)

    audit = cluster.client("audit")
    balance = cluster.run_invoke(audit, shared, "get_balance")
    print(f"\nfinal balance: {balance}")
    print(f"successful withdrawals: {outcomes['ok']} (exactly the money that existed)")
    print(f"rejected (insufficient funds): {outcomes['rejected']}")
    assert balance == 0 and outcomes["ok"] == 10

    print("\n== cross-account transfer with compensation ==")
    cluster.run_invoke(audit, payee, "deposit", 1)
    cluster.run_invoke(audit, shared, "deposit", 50)
    cluster.run_invoke(audit, shared, "transfer", payee, 30)
    print(f"shared: {cluster.run_invoke(audit, shared, 'get_balance')}")
    print(f"payee:  {cluster.run_invoke(audit, payee, 'get_balance')}")
    print("\nledger of the shared account:")
    for entry in cluster.run_invoke(audit, shared, "get_ledger", 10):
        print(f"  {entry['kind']:6s} {entry['amount']:4d}  {entry['note']}")


if __name__ == "__main__":
    main()
