#!/usr/bin/env python3
"""Quickstart: define an object type, create objects, invoke methods.

LambdaObjects in three steps:

1. declare an *object type* — fields plus methods (the methods are what
   the paper compiles to WebAssembly; here they are sandboxed Python);
2. create objects from the type;
3. invoke methods — each invocation is atomic, isolated, and immediately
   visible once it returns (invocation linearizability, paper §3.1).

Run with::

    python examples/quickstart.py
"""

from repro.core import (
    CollectionField,
    LocalRuntime,
    ObjectType,
    ValueField,
    method,
    readonly_method,
)


def define_guestbook():
    """A tiny guestbook: one value field, one collection, three methods."""

    def sign(self, visitor, message):
        entry_key = self.collection("entries").push(
            {"visitor": visitor, "message": message}
        )
        self.set("signatures", (self.get("signatures") or 0) + 1)
        return entry_key

    def read_entries(self, limit=10):
        return [entry for _key, entry in self.collection("entries").items(limit=limit)]

    def stats(self):
        return {"signatures": self.get("signatures") or 0}

    return ObjectType(
        "Guestbook",
        fields=[ValueField("signatures", default=0), CollectionField("entries")],
        methods=[
            method(sign),
            readonly_method(read_entries),
            readonly_method(stats),
        ],
    )


def main():
    # The embedded runtime: one process, in-memory storage, full
    # LambdaObjects semantics (the distributed LambdaStore runs exactly
    # the same model across nodes — see retwis_cluster.py).
    runtime = LocalRuntime(seed=42)
    runtime.register_type(define_guestbook())

    book = runtime.create_object("Guestbook")
    print(f"created guestbook object {book.short}...")

    for visitor, message in [
        ("ada", "lovely architecture"),
        ("alan", "strongly consistent, nice"),
        ("barbara", "my favourite abstraction"),
    ]:
        key = runtime.invoke(book, "sign", visitor, message)
        print(f"  {visitor} signed under entry key {key}")

    print("\nentries:")
    for entry in runtime.invoke(book, "read_entries"):
        print(f"  {entry['visitor']}: {entry['message']}")

    print(f"\nstats: {runtime.invoke(book, 'stats')}")

    # Read-only, deterministic methods are cached consistently (§4.2.2):
    result = runtime.invoke_detailed(book, "stats")
    print(f"second stats call served from cache: {result.cache_hit}")

    # ...and any write invalidates them:
    runtime.invoke(book, "sign", "grace", "debugging approved")
    result = runtime.invoke_detailed(book, "stats")
    print(f"after a new signature, cache hit: {result.cache_hit}, value: {result.value}")


if __name__ == "__main__":
    main()
