#!/usr/bin/env python3
"""Head-to-head: aggregated LambdaStore vs conventional serverless.

Runs a miniature version of the paper's §5 evaluation (Post workload)
on both architectures under identical cost models and prints the
throughput/latency comparison — the headline result of Figures 1 and 2.

Run with::

    python examples/compare_architectures.py

For the full evaluation use ``python -m repro.bench fig1`` (and ``fig2``).
"""

from repro.bench.calibration import preset
from repro.bench.harness import AGGREGATED, DISAGGREGATED, run_retwis
from repro.workload.retwis_load import RetwisWorkload


def main():
    cal = preset(
        "quick", num_accounts=400, num_clients=25, duration_ms=250.0, warmup_ms=60.0
    )
    print(
        f"ReTwis Post workload: {cal.num_accounts} accounts, "
        f"{cal.num_clients} concurrent clients, ~{cal.avg_follows} follows/user\n"
    )

    results = {}
    for variant in (AGGREGATED, DISAGGREGATED):
        print(f"running {variant} variant...")
        results[variant] = run_retwis(variant, RetwisWorkload.POST, cal)

    agg, dis = results[AGGREGATED], results[DISAGGREGATED]
    print("\n                     aggregated   disaggregated")
    print(f"throughput (jobs/s)  {agg.throughput:10.0f}   {dis.throughput:13.0f}")
    print(f"median latency (ms)  {agg.median_ms:10.2f}   {dis.median_ms:13.2f}")
    print(f"p99 latency (ms)     {agg.p99_ms:10.2f}   {dis.p99_ms:13.2f}")
    print(f"\nspeedup: {agg.throughput / dis.throughput:.2f}x  "
          f"(paper reports 2.66x on its testbed)")
    print(f"median latency reduction: "
          f"{100 * (1 - agg.median_ms / dis.median_ms):.0f}%  (paper: >= 50%)")


if __name__ == "__main__":
    main()
