#!/usr/bin/env python3
"""Serializable multi-call transactions — the paper's §7 future work.

Plain LambdaObjects commit at every invocation boundary (§3.1), so a
transfer between two accounts is two separate atomic steps with
compensation on failure.  The transactional extension makes the whole
transfer one atomic unit: strict two-phase locking over objects with
wound-wait conflict resolution.

Run with::

    python examples/transactions_demo.py
"""

from repro.apps.bank import account_type
from repro.core import LocalRuntime
from repro.core.transactions import TransactionAborted, TransactionManager


def main():
    runtime = LocalRuntime(seed=1)
    runtime.register_type(account_type())
    manager = TransactionManager(runtime)

    checking = runtime.create_object("Account", initial={"balance": 100})
    savings = runtime.create_object("Account", initial={"balance": 500})

    print("== an atomic transfer across two objects ==")
    with manager.transaction() as txn:
        txn.invoke(savings, "withdraw", 200)
        # Outside the transaction nothing is visible yet:
        outside = runtime.invoke(savings, "get_balance")
        print(f"mid-transaction, an outside reader sees savings = {outside}")
        txn.invoke(checking, "deposit", 200)
    print(f"after commit: checking={runtime.invoke(checking, 'get_balance')}, "
          f"savings={runtime.invoke(savings, 'get_balance')}")

    print("\n== a failed transaction rolls everything back ==")
    try:
        with manager.transaction() as txn:
            txn.invoke(checking, "withdraw", 50)
            txn.invoke(savings, "withdraw", 10_000)  # traps: insufficient funds
    except Exception as error:
        print(f"aborted: {str(error)[:70]}...")
    print(f"balances untouched: checking={runtime.invoke(checking, 'get_balance')}, "
          f"savings={runtime.invoke(savings, 'get_balance')}")

    print("\n== wound-wait: the older transaction wins conflicts ==")
    older = manager.begin()
    younger = manager.begin()
    younger.invoke(checking, "withdraw", 1)
    print(f"younger txn {younger.txn_id} holds the lock on checking")
    older.invoke(checking, "withdraw", 5)
    print(f"older txn {older.txn_id} wounded it: younger active = {younger.is_active}")
    older.commit()
    print(f"checking = {runtime.invoke(checking, 'get_balance')} (only the older debit)")

    print("\n== automatic retry with manager.run ==")

    def transfer(txn, source=checking, sink=savings, amount=25):
        txn.invoke(source, "withdraw", amount)
        txn.invoke(sink, "deposit", amount)
        return "transferred"

    print(manager.run(transfer))
    print(f"final: checking={runtime.invoke(checking, 'get_balance')}, "
          f"savings={runtime.invoke(savings, 'get_balance')}")
    print(f"manager stats: {manager.stats}")


if __name__ == "__main__":
    main()
